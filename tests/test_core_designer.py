"""Tests for the designer (Fig. 1 as an API)."""

import pytest

from repro.core.application import ElementKind, SourceRole
from repro.core.datasources import (
    CustomerProfileSource,
    ProprietaryTableSource,
    SourceRegistry,
    WebSearchSource,
)
from repro.core.designer import Designer
from repro.core.presentation import ThemeRegistry
from repro.errors import ConfigurationError, NotFoundError, ValidationError
from repro.storage.records import FieldSpec, FieldType, RecordTable, Schema
from repro.util import IdGenerator


@pytest.fixture()
def registry(engine):
    registry = SourceRegistry()
    schema = Schema((
        FieldSpec("title", FieldType.STRING),
        FieldSpec("description", FieldType.TEXT),
        FieldSpec("image_url", FieldType.URL),
    ))
    table = RecordTable("inventory", schema)
    table.insert({"title": "Halo Odyssey",
                  "description": "classic shooter",
                  "image_url": "http://img.example/1.jpg"})
    registry.add(ProprietaryTableSource(
        "inv", "Inventory", table, ("title", "description")
    ))
    registry.add(WebSearchSource("web", "Web search", engine, "web"))
    registry.add(CustomerProfileSource("cust", "Customers"))
    return registry


@pytest.fixture()
def designer(registry):
    return Designer(registry, ThemeRegistry(), IdGenerator())


@pytest.fixture()
def session(designer):
    return designer.new_application("GamerQueen", "tenant-1")


class TestPalette:
    def test_palette_lists_all_sources(self, session):
        names = {entry["name"] for entry in session.palette()}
        assert names == {"Inventory", "Web search", "Customers"}

    def test_palette_entries_carry_fields(self, session):
        entry = next(e for e in session.palette()
                     if e["name"] == "Inventory")
        assert "title" in entry["fields"]


class TestDragAndDrop:
    def test_primary_drop(self, session):
        slot = session.drag_source_onto_app("inv", heading="Games")
        assert slot.role == SourceRole.PRIMARY
        assert slot.heading == "Games"

    def test_unknown_source_rejected(self, session):
        with pytest.raises(NotFoundError):
            session.drag_source_onto_app("ghost")

    def test_bad_search_field_rejected(self, session):
        with pytest.raises(ConfigurationError):
            session.drag_source_onto_app("inv",
                                         search_fields=("nope",))

    def test_supplemental_drop_validates_drive_fields(self, session):
        slot = session.drag_source_onto_app("inv")
        child = session.drag_source_onto_result_layout(
            slot, "web", drive_fields=("title",)
        )
        assert child.role == SourceRole.SUPPLEMENTAL
        with pytest.raises(ConfigurationError):
            session.drag_source_onto_result_layout(
                slot, "web", drive_fields=("not_a_field",)
            )
        with pytest.raises(ValidationError):
            session.drag_source_onto_result_layout(
                slot, "web", drive_fields=()
            )

    def test_customer_source_attachment(self, session):
        session.attach_customer_source("cust")
        with pytest.raises(ConfigurationError):
            session.attach_customer_source("web")


class TestElements:
    def test_add_elements(self, session):
        slot = session.drag_source_onto_app("inv")
        session.add_hyperlink(slot, "title")
        session.add_image(slot, "image_url")
        session.add_text(slot, "description", color="#333",
                         font_size="12px")
        kinds = [e.kind for e in slot.elements]
        assert kinds == [ElementKind.HYPERLINK, ElementKind.IMAGE,
                         ElementKind.TEXT]
        assert slot.elements[2].style == {"color": "#333",
                                          "font-size": "12px"}

    def test_unknown_bind_field_rejected(self, session):
        slot = session.drag_source_onto_app("inv")
        with pytest.raises(ConfigurationError):
            session.add_text(slot, "no_such_field")

    def test_common_fields_always_bindable(self, session):
        slot = session.drag_source_onto_app("inv")
        session.add_text(slot, "title")
        session.add_hyperlink(slot, "title", href_field="url")


class TestPresentationGestures:
    def test_apply_template(self, session):
        session.apply_template("midnight")
        assert session.theme == "midnight"
        with pytest.raises(NotFoundError):
            session.apply_template("nonexistent")

    def test_wizard_sets_theme(self, session):
        recommendation = session.run_wizard(tone="dark",
                                            accent_color="#ff0000")
        assert session.theme == "midnight"
        assert recommendation["element_styles"]["heading"]["color"] == \
            "#ff0000"


class TestValidateAndBuild:
    def test_empty_canvas_is_error(self, session):
        issues = session.validate()
        assert any(i.severity == "error" for i in issues)
        with pytest.raises(ConfigurationError):
            session.build()

    def test_warning_for_missing_elements(self, session):
        session.drag_source_onto_app("inv", search_fields=("title",))
        issues = session.validate()
        assert any("no elements" in i.message for i in issues)

    def test_warning_for_missing_search_fields(self, session):
        slot = session.drag_source_onto_app("inv")
        session.add_text(slot, "title")
        issues = session.validate()
        assert any("search fields" in i.message for i in issues)

    def test_build_produces_valid_definition(self, session):
        slot = session.drag_source_onto_app(
            "inv", heading="Games", search_fields=("title",)
        )
        session.add_hyperlink(slot, "title")
        session.drag_source_onto_result_layout(
            slot, "web", drive_fields=("title",),
            query_suffix="review",
        )
        session.attach_customer_source("cust")
        app = session.build()
        app.validate()
        assert len(app.bindings) == 3  # primary + supplemental + customer
        assert app.bindings_by_role(SourceRole.CUSTOMER)
        child = app.slots[0].children[0]
        assert app.binding(child.binding_id).query_suffix == "review"

    def test_build_is_reproducible_json(self, session):
        slot = session.drag_source_onto_app("inv",
                                            search_fields=("title",))
        session.add_text(slot, "title")
        app = session.build()
        from repro.core.application import ApplicationDefinition
        assert ApplicationDefinition.from_dict(app.to_dict()) == app


class TestCanvasDescription:
    def test_describe_shows_structure(self, session):
        slot = session.drag_source_onto_app(
            "inv", heading="Games", search_fields=("title",)
        )
        session.add_hyperlink(slot, "title")
        session.drag_source_onto_result_layout(
            slot, "web", drive_fields=("title",), heading="Reviews",
            query_suffix="review",
        )
        canvas = session.describe_canvas()
        assert "[Palette]" in canvas
        assert "[primary] Games" in canvas
        assert "search by: title" in canvas
        assert 'driven by: title + "review"' in canvas
        assert "element: hyperlink(title)" in canvas

    def test_empty_canvas_hint(self, session):
        assert "drag a data source" in session.describe_canvas()
