"""Tests for ``repro.controlplane`` — range routing, live shard
handoff, and the telemetry-driven autoscaler."""

from collections import Counter

import pytest

from repro.cluster import (
    HASH_SPACE,
    ClusterConfig,
    RouteMap,
    ShardRouter,
    build_clustered_engine,
    route_hash,
)
from repro.controlplane import (
    CLEANUP,
    COMPLETE,
    COPY,
    CUTOVER,
    Autoscaler,
    AutoscalerPolicy,
    ShardLifecycleManager,
)
from repro.errors import ConfigurationError, ControlPlaneError
from repro.gateway.generations import TOPOLOGY_KEY
from repro.resilience.hedging import HedgePolicy
from repro.searchengine.documents import FieldedDocument
from repro.telemetry import Telemetry

DOC_IDS = [f"http://site-{i}.example/page-{i}" for i in range(2000)]


@pytest.fixture()
def make_cluster(small_web):
    """Factory for fresh clusters (tests mutate topology)."""
    engines = []

    def _make(num_shards=2, replicas=1, **kwargs):
        engine = build_clustered_engine(
            small_web,
            ClusterConfig(num_shards=num_shards,
                          replicas_per_shard=replicas),
            use_authority=False, **kwargs,
        )
        engines.append(engine)
        return engine

    yield _make
    for engine in engines:
        engine.close()


def snap(engine, query="news"):
    response = engine.search("web", query)
    return tuple(response.urls()), response.total_matches


class TestRouteMap:
    def test_initial_map_tiles_the_hash_space(self):
        route = RouteMap.initial(4)
        assert route.version == 1
        assert route.shard_ids == (0, 1, 2, 3)
        cursor = 0
        for entry in route.ranges:
            assert entry.low == cursor
            cursor = entry.high
        assert cursor == HASH_SPACE

    def test_split_moves_only_the_upper_half(self):
        route = RouteMap.initial(2)
        successor, moved = route.split(0, 2)
        assert successor.version == 2
        assert moved.shard_id == 2
        changed = {d for d in DOC_IDS
                   if route.shard_of(d) != successor.shard_of(d)}
        in_moved = {d for d in DOC_IDS if route_hash(d) in moved}
        assert changed == in_moved
        assert changed  # the moved half is not empty
        for doc_id in changed:
            assert route.shard_of(doc_id) == 0
            assert successor.shard_of(doc_id) == 2

    def test_split_rejects_an_active_target(self):
        route = RouteMap.initial(2)
        with pytest.raises(ValueError):
            route.split(0, 1)

    def test_merge_relabels_the_source_ranges(self):
        route = RouteMap.initial(3)
        successor, moved = route.merge(2, 0)
        assert successor.version == 2
        assert successor.shard_ids == (0, 1)
        for doc_id in DOC_IDS:
            before = route.shard_of(doc_id)
            after = successor.shard_of(doc_id)
            assert after == (0 if before == 2 else before)
        assert all(entry.shard_id == 2 for entry in moved)

    def test_merge_validation(self):
        route = RouteMap.initial(2)
        with pytest.raises(ValueError):
            route.merge(1, 1)
        with pytest.raises(ValueError):
            route.merge(5, 0)

    def test_router_enforces_version_succession(self):
        router = ShardRouter(2)
        v2, __ = router.snapshot().split(0, 2)
        v3, __ = v2.split(1, 3)
        with pytest.raises(ValueError):
            router.apply(v3)   # skips version 2
        router.apply(v2)
        router.apply(v3)
        assert router.topology_version == 3

    @pytest.mark.parametrize("num_shards", [4, 8, 16])
    def test_distribution_skew_is_bounded(self, num_shards):
        route = RouteMap.initial(num_shards)
        counts = Counter(route.shard_of(d) for d in DOC_IDS)
        assert len(counts) == num_shards
        mean = len(DOC_IDS) / num_shards
        assert max(counts.values()) < 1.35 * mean
        assert min(counts.values()) > 0.65 * mean


class TestRouteFlipIsolation:
    def test_mid_query_flip_does_not_mix_layouts(self, make_cluster):
        """A query pins one route snapshot: flipping the topology
        between its scatter phases must not change the shard set it
        talks to."""
        engine = make_cluster(num_shards=2)
        merged, __ = engine.router.snapshot().merge(1, 0)
        baseline = snap(engine)

        scattered = []
        real_scatter = engine.executor.scatter
        flipped = []

        def spying_scatter(tasks, wall_budget_s=None):
            scattered.append(frozenset(tasks))
            if not flipped:
                engine.apply_route(merged)
                flipped.append(True)
            return real_scatter(tasks, wall_budget_s=wall_budget_s)

        engine.executor.scatter = spying_scatter
        during = snap(engine)
        after_sets_start = len(scattered)
        snap(engine)

        # Both phases of the in-flight query used the pinned two-shard
        # layout even though the route flipped after phase 1 ...
        assert scattered[0] == frozenset({0, 1})
        assert scattered[1] == frozenset({0, 1})
        assert during == baseline
        # ... and the next query consistently sees the new layout.
        for shard_set in scattered[after_sets_start:]:
            assert shard_set == frozenset({0})


class TestReplicaScaling:
    def test_add_replica_clones_the_primary(self, make_cluster):
        engine = make_cluster(num_shards=2, replicas=1)
        lifecycle = ShardLifecycleManager(engine)
        baseline = snap(engine)
        primary_docs = engine.groups[0].replicas[0].doc_count("web")

        replica = lifecycle.add_replica(0)
        assert len(engine.groups[0].replicas) == 2
        assert replica.doc_count("web") == primary_docs
        # Reads rotate onto the clone without changing results.
        for __ in range(4):
            assert snap(engine) == baseline

        lifecycle.remove_replica(0)
        assert len(engine.groups[0].replicas) == 1
        assert snap(engine) == baseline

    def test_membership_change_resets_hedge_learning(self, make_cluster):
        """Satellite: latency histograms reset when membership changes
        so stale observations cannot poison the hedge threshold."""
        engine = make_cluster(
            num_shards=2, replicas=2,
            hedge=HedgePolicy(min_observations=4),
        )
        lifecycle = ShardLifecycleManager(engine)
        for __ in range(4):
            engine.search("web", "news")
        group = engine.groups[0]
        assert group.latency_histogram.count > 0

        lifecycle.add_replica(0)
        assert group.latency_histogram.count == 0
        for __ in range(3):
            engine.search("web", "news")
        assert group.latency_histogram.count > 0

        lifecycle.remove_replica(0)
        assert group.latency_histogram.count == 0


class TestLiveResharding:
    def test_split_preserves_results_at_every_step(self, make_cluster):
        telemetry = Telemetry()
        engine = make_cluster(num_shards=2, telemetry=telemetry)
        lifecycle = ShardLifecycleManager(engine, telemetry=telemetry,
                                          batch_size=32)
        queries = ("news", "game", "travel")
        baseline = {q: snap(engine, q) for q in queries}
        donor_docs = engine.shard_doc_count(0)

        migration = lifecycle.begin_split(0)
        states = [migration.state]
        while states[-1] != COMPLETE:
            for q in queries:
                assert snap(engine, q) == baseline[q], states[-1]
            states.append(lifecycle.step())

        assert COPY in states and CUTOVER in states
        assert CLEANUP in states
        assert engine.num_shards == 3
        assert engine.topology_version == 2
        assert migration.docs_moved > 0
        assert engine.shard_doc_count(2) == migration.docs_moved
        assert engine.shard_doc_count(0) == (donor_docs
                                             - migration.docs_moved)
        for q in queries:
            assert snap(engine, q) == baseline[q]

        for kind in ("reshard.start", "reshard.handoff",
                     "reshard.cutover", "reshard.complete"):
            assert telemetry.events.by_kind(kind)

    def test_merge_returns_to_the_original_topology(self, make_cluster):
        engine = make_cluster(num_shards=2)
        lifecycle = ShardLifecycleManager(engine, batch_size=64)
        baseline = snap(engine)

        lifecycle.begin_split(0)
        lifecycle.run()
        lifecycle.begin_merge(2, 0)
        lifecycle.run()

        assert engine.topology_version == 3
        assert engine.router.snapshot().shard_ids == (0, 1)
        assert engine.shard_doc_count(2) == 0
        assert snap(engine) == baseline

    def test_dual_writes_reach_both_sides_of_the_handoff(
            self, make_cluster):
        engine = make_cluster(num_shards=2)
        lifecycle = ShardLifecycleManager(engine, batch_size=16)
        migration = lifecycle.begin_split(0)
        assert migration.state == COPY

        moving = next(
            f"http://fresh.example/{i}" for i in range(10_000)
            if migration.owns(f"http://fresh.example/{i}")
        )
        doc = FieldedDocument(
            doc_id=moving,
            fields={"url": moving, "title": "zzfresh chronicle",
                    "body": "zzfresh body", "site": "fresh.example",
                    "topic": "news"},
        )
        engine.add_document("web", doc)
        # The write landed on the donor *and* was fanned out to the
        # filling target, so no copy step needs to see it again.
        for shard_id in (0, 2):
            index = engine.groups[shard_id].replicas[0] \
                .vertical("web").index
            assert moving in index

        lifecycle.run()
        response = engine.search("web", "zzfresh")
        assert response.urls() == [moving]
        assert engine.router.snapshot().shard_of(moving) == 2

    def test_only_one_migration_at_a_time(self, make_cluster):
        engine = make_cluster(num_shards=2)
        lifecycle = ShardLifecycleManager(engine)
        lifecycle.begin_split(0)
        with pytest.raises(ControlPlaneError):
            lifecycle.begin_split(1)
        with pytest.raises(ControlPlaneError):
            lifecycle.begin_merge(1, 0)
        lifecycle.run()
        assert lifecycle.step() is None     # idle manager is a no-op
        with pytest.raises(ControlPlaneError):
            lifecycle.run()


def drive(engine, autoscaler, ticks, queries=("news", "game"),
          spike=None):
    """Run query traffic and autoscaler ticks; returns decisions."""
    decisions = []
    for __ in range(ticks):
        # Re-arm per tick: drain leftovers so a hot phase never bleeds
        # queued delays into the quiet ticks that follow it.
        for replica in engine.groups[0].replicas:
            while replica.take_latency_ms() > 0:
                pass
        if spike is not None:
            for replica in engine.groups[0].replicas:
                replica.inject_latency(spike, count=8)
        for query in queries:
            engine.search("web", query)
        decisions.append(autoscaler.tick())
    return decisions


class TestAutoscaler:
    def make(self, make_cluster, policy, replicas=1):
        telemetry = Telemetry()
        engine = make_cluster(num_shards=2, replicas=replicas,
                              telemetry=telemetry)
        lifecycle = ShardLifecycleManager(engine, telemetry=telemetry,
                                          batch_size=512)
        return engine, Autoscaler(engine, lifecycle,
                                  telemetry=telemetry, policy=policy)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(latency_high_ms=10.0, latency_low_ms=20.0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(breach_rounds=0)

    def test_in_band_load_never_triggers_actions(self, make_cluster):
        engine, autoscaler = self.make(make_cluster, AutoscalerPolicy(
            latency_high_ms=500.0, latency_low_ms=0.1,
            breach_rounds=1, cooldown_ticks=0,
        ))
        decisions = drive(engine, autoscaler, ticks=8)
        assert not any(d.acted for d in decisions)
        assert engine.num_shards == 2
        assert len(engine.groups[0].replicas) == 1

    def test_hysteresis_requires_consecutive_breaches(self,
                                                      make_cluster):
        engine, autoscaler = self.make(make_cluster, AutoscalerPolicy(
            latency_high_ms=50.0, latency_low_ms=0.1, breach_rounds=3,
        ))
        # Two hot ticks, then quiet: the streak resets in the dead
        # band, so the threshold round count is never reached.
        drive(engine, autoscaler, ticks=2, spike=400.0)
        decisions = drive(engine, autoscaler, ticks=4)
        drive(engine, autoscaler, ticks=2, spike=400.0)
        assert not any(d.acted for d in decisions)
        assert not any(d.acted for d in autoscaler.decisions)

    def test_sustained_heat_adds_a_replica_then_cools_down(
            self, make_cluster):
        engine, autoscaler = self.make(make_cluster, AutoscalerPolicy(
            latency_high_ms=50.0, latency_low_ms=0.1, breach_rounds=2,
            cooldown_ticks=3, max_replicas=2,
        ))
        decisions = drive(engine, autoscaler, ticks=6, spike=400.0)
        acted = [(i, d.action) for i, d in enumerate(decisions)
                 if d.acted]
        assert acted[0][1] == "add_replica"
        assert len(engine.groups[0].replicas) == 2
        # Cooldown: the ticks right after the action never act, even
        # though the shard is still hot.
        first = acted[0][0]
        assert all(not d.acted
                   for d in decisions[first + 1:first + 4])

    def test_ladder_escalates_to_a_split_at_max_replicas(
            self, make_cluster):
        engine, autoscaler = self.make(make_cluster, AutoscalerPolicy(
            latency_high_ms=50.0, latency_low_ms=0.1, breach_rounds=2,
            cooldown_ticks=1, max_replicas=1, split_min_docs=1,
            max_shards=3,
        ))
        decisions = drive(engine, autoscaler, ticks=10, spike=400.0)
        actions = [d.action for d in decisions if d.acted]
        assert actions[0] == "split"
        assert "reshard_step" in {d.action for d in decisions}
        assert engine.num_shards == 3
        assert engine.topology_version == 2

    def test_cold_shard_sheds_a_replica(self, make_cluster):
        engine, autoscaler = self.make(make_cluster, AutoscalerPolicy(
            latency_high_ms=500.0, latency_low_ms=450.0,
            breach_rounds=2, cooldown_ticks=1, min_replicas=1,
            max_replicas=2,
        ), replicas=2)
        decisions = drive(engine, autoscaler, ticks=4)
        actions = [d.action for d in decisions if d.acted]
        assert "remove_replica" in actions
        assert len(engine.groups[0].replicas) == 1 \
            or len(engine.groups[1].replicas) == 1

    def test_idle_cold_cluster_merges_down(self, make_cluster):
        engine, autoscaler = self.make(make_cluster, AutoscalerPolicy(
            latency_high_ms=500.0, latency_low_ms=450.0,
            breach_rounds=2, cooldown_ticks=1, min_replicas=1,
            merge_max_docs=1_000_000,
        ))
        baseline = snap(engine)
        decisions = drive(engine, autoscaler, ticks=12)
        actions = [d.action for d in decisions if d.acted]
        assert "merge" in actions
        assert engine.num_shards == 1
        assert snap(engine) == baseline


class TestPlatformIntegration:
    def test_controlplane_requires_a_cluster(self, small_web):
        from repro.core.platform import Symphony

        with pytest.raises(ConfigurationError):
            Symphony(web=small_web, controlplane=True)

    def test_cutover_bumps_the_topology_generation(self, small_web):
        from repro.core.platform import Symphony

        symphony = Symphony(
            web=small_web, use_authority=False,
            cluster=ClusterConfig(num_shards=2, replicas_per_shard=1),
            controlplane=True, gateway=True, telemetry=True,
        )
        assert symphony.controlplane is not None
        assert symphony.autoscaler is not None

        before = symphony.generations.current(TOPOLOGY_KEY)
        stamp = symphony.generations.snapshot([TOPOLOGY_KEY])
        assert symphony.generations.valid(stamp)

        symphony.controlplane.begin_split(0)
        symphony.controlplane.run()

        # Cached results stamped under the old topology are now stale.
        assert symphony.generations.current(TOPOLOGY_KEY) == before + 1
        assert not symphony.generations.valid(stamp)
