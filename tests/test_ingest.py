"""Tests for ingestion: readers, workbook, RSS, transports, crawler,
pipeline."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import IngestError, NotFoundError, TransportError
from repro.ingest.crawler import CrawlPolicy, Crawler
from repro.ingest.pipeline import DatasetIngestor, detect_format
from repro.ingest.readers import (
    parse_delimited,
    parse_json_array,
    parse_json_lines,
    parse_xml_records,
    sniff_delimiter,
)
from repro.ingest.rss import FeedPublisher, parse_rss
from repro.ingest.transports import (
    FaultPolicy,
    FtpServer,
    HttpUploadChannel,
)
from repro.ingest.workbook import (
    Workbook,
    Worksheet,
    dump_workbook,
    parse_workbook,
)
from repro.storage.tenant import Tenant
from repro.util import SimClock


class TestSniffDelimiter:
    def test_comma(self):
        assert sniff_delimiter("a,b,c\n1,2,3\n") == ","

    def test_tab(self):
        assert sniff_delimiter("a\tb\n1\t2\n") == "\t"

    def test_pipe(self):
        assert sniff_delimiter("a|b|c\n1|2|3\n") == "|"

    def test_prefers_consistent_delimiter(self):
        # Comma appears once on one line only; semicolon is consistent.
        text = "a;b,x;c\n1;2;3\n4;5;6\n"
        assert sniff_delimiter(text) == ";"

    def test_no_delimiter(self):
        with pytest.raises(IngestError):
            sniff_delimiter("plainword\nanother\n")

    def test_empty(self):
        with pytest.raises(IngestError):
            sniff_delimiter("")


class TestParseDelimited:
    def test_header_row(self):
        rows = parse_delimited(b"title,price\nHalo,49.99\n")
        assert rows == [{"title": "Halo", "price": "49.99"}]

    def test_no_header_names_columns(self):
        rows = parse_delimited("Halo,49.99", has_header=False)
        assert rows == [{"column_1": "Halo", "column_2": "49.99"}]

    def test_quoted_fields(self):
        rows = parse_delimited('title,desc\nHalo,"great, classic game"\n')
        assert rows[0]["desc"] == "great, classic game"

    def test_ragged_row_rejected_with_line_number(self):
        with pytest.raises(IngestError, match="line 3"):
            parse_delimited("a,b\n1,2\n1,2,3\n")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(IngestError, match="duplicate"):
            parse_delimited("a,a\n1,2\n")

    def test_blank_lines_skipped(self):
        rows = parse_delimited("a,b\n\n1,2\n\n")
        assert len(rows) == 1

    def test_empty_rejected(self):
        with pytest.raises(IngestError):
            parse_delimited("")
        with pytest.raises(IngestError):
            parse_delimited("a,b\n")  # header only

    def test_bad_utf8_rejected(self):
        with pytest.raises(IngestError):
            parse_delimited(b"\xff\xfe\x00bad")

    def test_bom_tolerated(self):
        rows = parse_delimited("﻿a,b\n1,2\n".encode("utf-8"))
        assert rows[0] == {"a": "1", "b": "2"}

    @given(st.lists(
        st.tuples(st.text(alphabet="abcxyz", min_size=1, max_size=8),
                  st.integers(0, 999)),
        min_size=1, max_size=20,
    ))
    def test_roundtrip_values(self, pairs):
        text = "name,value\n" + "\n".join(
            f"{name},{value}" for name, value in pairs
        )
        rows = parse_delimited(text)
        assert [(r["name"], int(r["value"])) for r in rows] == pairs


class TestParseXml:
    XML = b"""<inventory>
      <game id="1"><title>Halo</title><price>49.99</price></game>
      <game id="2"><title>Zelda</title><price>39.99</price></game>
      <meta><count>2</count></meta>
    </inventory>"""

    def test_auto_detects_record_element(self):
        rows = parse_xml_records(self.XML)
        assert len(rows) == 2
        assert rows[0]["title"] == "Halo"
        assert rows[0]["id"] == "1"

    def test_explicit_record_element(self):
        rows = parse_xml_records(self.XML, record_element="meta")
        assert rows == [{"count": "2"}]

    def test_missing_record_element(self):
        with pytest.raises(IngestError):
            parse_xml_records(self.XML, record_element="nothing")

    def test_invalid_xml(self):
        with pytest.raises(IngestError):
            parse_xml_records(b"<broken><unclosed>")

    def test_empty_root(self):
        with pytest.raises(IngestError):
            parse_xml_records(b"<root></root>")

    def test_attribute_collision_prefixed(self):
        xml = b"<r><item title='attr'><title>child</title></item></r>"
        rows = parse_xml_records(xml)
        assert rows[0]["title"] == "child"
        assert rows[0]["@title"] == "attr"


class TestParseJson:
    def test_json_lines(self):
        rows = parse_json_lines(b'{"a": 1}\n\n{"a": 2}\n')
        assert rows == [{"a": 1}, {"a": 2}]

    def test_json_lines_bad_line(self):
        with pytest.raises(IngestError, match="line 2"):
            parse_json_lines('{"a": 1}\nnot json\n')

    def test_json_lines_non_object(self):
        with pytest.raises(IngestError):
            parse_json_lines("[1, 2]\n")

    def test_json_array(self):
        rows = parse_json_array('[{"a": 1}, {"a": 2}]')
        assert len(rows) == 2

    def test_json_array_wrong_shape(self):
        with pytest.raises(IngestError):
            parse_json_array('{"a": 1}')
        with pytest.raises(IngestError):
            parse_json_array("[1]")
        with pytest.raises(IngestError):
            parse_json_array("[]")


class TestWorkbook:
    def make_doc(self):
        return {
            "workbook": "inventory",
            "sheets": [
                {"name": "Games", "header": ["title", "price"],
                 "rows": [["Halo", 49.99], ["Zelda", 39.99]]},
                {"name": "Consoles", "header": ["name"],
                 "rows": [["XBox"]]},
            ],
        }

    def test_parse_and_records(self):
        workbook = parse_workbook(json.dumps(self.make_doc()))
        assert workbook.sheet_names() == ["Games", "Consoles"]
        records = workbook.sheet("Games").to_records()
        assert records[0] == {"title": "Halo", "price": 49.99}

    def test_missing_sheet(self):
        workbook = parse_workbook(json.dumps(self.make_doc()))
        with pytest.raises(NotFoundError):
            workbook.sheet("Nope")

    def test_ragged_sheet_rejected(self):
        sheet = Worksheet("S", ("a", "b"), (("1",),))
        with pytest.raises(IngestError):
            sheet.to_records()

    def test_dump_roundtrip(self):
        workbook = parse_workbook(json.dumps(self.make_doc()))
        again = parse_workbook(dump_workbook(workbook))
        assert again == workbook

    def test_invalid_json(self):
        with pytest.raises(IngestError):
            parse_workbook(b"not json at all")

    def test_no_sheets(self):
        with pytest.raises(IngestError):
            parse_workbook('{"workbook": "x", "sheets": []}')

    def test_empty_header_rejected(self):
        doc = {"sheets": [{"name": "S", "header": [], "rows": []}]}
        with pytest.raises(IngestError):
            parse_workbook(json.dumps(doc))


class TestRss:
    def test_publish_then_parse(self, small_web):
        domain = next(iter(small_web.sites))
        xml = FeedPublisher(small_web).feed_xml(domain, max_items=5)
        items = parse_rss(xml)
        assert 0 < len(items) <= 5
        assert all(item.link.startswith("http://") for item in items)
        assert all(item.pub_date_ms for item in items)

    def test_items_sorted_newest_first(self, small_web):
        domain = next(iter(small_web.sites))
        items = parse_rss(FeedPublisher(small_web).feed_xml(domain))
        dates = [item.pub_date_ms for item in items]
        assert dates == sorted(dates, reverse=True)

    def test_to_row(self):
        xml = (b'<rss version="2.0"><channel><item>'
               b"<title>T</title><link>http://a.example/x</link>"
               b"<description>D</description>"
               b"</item></channel></rss>")
        row = parse_rss(xml)[0].to_row()
        assert row == {"title": "T", "link": "http://a.example/x",
                       "description": "D"}

    def test_wrong_root(self):
        with pytest.raises(IngestError):
            parse_rss(b"<atom></atom>")

    def test_no_channel(self):
        with pytest.raises(IngestError):
            parse_rss(b'<rss version="2.0"></rss>')

    def test_no_items(self):
        with pytest.raises(IngestError):
            parse_rss(b'<rss version="2.0"><channel></channel></rss>')

    def test_item_without_title_or_link(self):
        xml = (b'<rss version="2.0"><channel><item>'
               b"<description>only</description></item></channel></rss>")
        with pytest.raises(IngestError):
            parse_rss(xml)


class TestTransports:
    def test_http_upload_delivers(self):
        clock = SimClock(start_ms=0)
        channel = HttpUploadChannel(clock=clock)
        payload = channel.post_file("a.csv", b"data", "text/csv")
        assert payload.data == b"data"
        assert payload.transport == "http"
        assert clock.now_ms > 0

    def test_http_rejects_empty(self):
        with pytest.raises(TransportError):
            HttpUploadChannel().post_file("a.csv", b"")

    def test_http_latency_scales_with_size(self):
        clock = SimClock(start_ms=0)
        channel = HttpUploadChannel(clock=clock)
        channel.post_file("s.csv", b"x")
        small_ms = clock.now_ms
        channel.post_file("l.csv", b"x" * 1024 * 1024)
        assert clock.now_ms - small_ms > small_ms

    def test_ftp_put_list_retrieve_delete(self):
        ftp = FtpServer()
        ftp.put("/in/a.csv", b"data")
        assert ftp.listdir("/in") == ["/in/a.csv"]
        payload = ftp.retrieve("/in/a.csv")
        assert payload.data == b"data"
        assert payload.filename == "a.csv"
        ftp.delete("/in/a.csv")
        with pytest.raises(NotFoundError):
            ftp.retrieve("/in/a.csv")

    def test_fault_injection_deterministic(self):
        faults = FaultPolicy(fail_probability=1.0, seed=1)
        channel = HttpUploadChannel(faults=faults)
        with pytest.raises(TransportError):
            channel.post_file("a.csv", b"data")

    def test_truncation_fault(self):
        faults = FaultPolicy(truncate_probability=1.0, seed=1)
        channel = HttpUploadChannel(faults=faults)
        payload = channel.post_file("a.csv", b"0123456789")
        assert len(payload.data) == 5


class TestCrawler:
    def test_collects_pages_and_follows_links(self, small_web):
        seeds = [p.url for p in small_web.pages_on("gamespot.com")[:2]]
        result = Crawler(small_web).crawl(
            seeds, CrawlPolicy(max_pages=15, max_depth=2)
        )
        assert 2 <= len(result.pages) <= 15
        assert all("url" in row and "title" in row
                   for row in result.pages)

    def test_domain_restriction(self, small_web):
        seeds = [p.url for p in small_web.pages_on("gamespot.com")[:2]]
        result = Crawler(small_web).crawl(
            seeds, CrawlPolicy(max_pages=30,
                               allowed_domains=("gamespot.com",)),
        )
        assert {row["site"] for row in result.pages} == {"gamespot.com"}
        assert result.skipped  # off-domain links recorded

    def test_excluded_path_prefixes(self, small_web):
        seeds = [p.url for p in small_web.pages_on("gamespot.com")[:3]]
        everything = Crawler(small_web).crawl(
            seeds, CrawlPolicy(max_pages=50)
        )
        some_path = "/" + everything.pages[0]["url"].split("/", 3)[3][:4]
        filtered = Crawler(small_web).crawl(
            seeds, CrawlPolicy(max_pages=50,
                               excluded_path_prefixes=(some_path,)),
        )
        for row in filtered.pages:
            path = "/" + row["url"].removeprefix("http://").partition(
                "/")[2]
            assert not path.startswith(some_path)

    def test_fetch_failures_recorded_not_fatal(self, small_web):
        seeds = [p.url for p in small_web.pages_on("gamespot.com")[:3]]
        result = Crawler(small_web).crawl(
            seeds, CrawlPolicy(max_pages=20,
                               fetch_failure_probability=0.5, seed=3),
        )
        assert result.failed
        assert result.pages  # others still succeed

    def test_max_pages_budget(self, small_web):
        seeds = [p.url for p in small_web.pages_on("gamespot.com")[:1]]
        result = Crawler(small_web).crawl(
            seeds, CrawlPolicy(max_pages=3, max_depth=5)
        )
        assert len(result.pages) == 3

    def test_dead_seed_is_failure(self, small_web):
        result = Crawler(small_web).crawl(
            ["http://nowhere.example/x"], CrawlPolicy()
        )
        assert result.failed and not result.pages


class TestPipeline:
    def make_tenant(self):
        return Tenant("t1", "Ann")

    def payload(self, data, filename="inv.csv",
                content_type="text/csv"):
        return HttpUploadChannel(clock=SimClock()).post_file(
            filename, data, content_type
        )

    def test_detect_format(self):
        assert detect_format("a.csv") == "delimited"
        assert detect_format("a.xml") == "xml"
        assert detect_format("a.jsonl") == "jsonlines"
        assert detect_format("a.xlsw") == "workbook"
        assert detect_format("feed.rss") == "rss"
        assert detect_format("x.bin", "application/json") == "json"
        with pytest.raises(IngestError):
            detect_format("x.bin", "application/octet-stream")

    def test_detect_format_strips_media_type_parameters(self):
        # A parameterized content type must match on its bare media
        # type — "text/csv; charset=utf-8" is still CSV.
        assert detect_format("x.bin",
                             "text/csv; charset=utf-8") == "delimited"
        assert detect_format("x.bin",
                             "Application/JSON ; indent=2") == "json"
        with pytest.raises(IngestError):
            detect_format("x.bin", "; charset=utf-8")

    def test_first_load_infers_schema(self):
        tenant = self.make_tenant()
        ingestor = DatasetIngestor(tenant)
        report = ingestor.ingest(
            self.payload(b"title,price\nHalo,49.99\nZelda,39.99\n"),
            "games",
        )
        assert report.inserted == 2
        assert report.format == "delimited"
        table = tenant.table("games")
        assert table.schema.spec("price").type.value == "float"

    def test_unchanged_payload_short_circuits(self):
        tenant = self.make_tenant()
        ingestor = DatasetIngestor(tenant)
        data = b"title\nHalo\n"
        ingestor.ingest(self.payload(data), "games")
        report = ingestor.ingest(self.payload(data), "games")
        assert report.unchanged
        assert len(tenant.table("games")) == 1

    def test_incremental_upsert(self):
        tenant = self.make_tenant()
        ingestor = DatasetIngestor(tenant)
        ingestor.ingest(
            self.payload(b"title,price\nHalo,49.99\n"),
            "games", key_field="title", indexed_fields=("title",),
        )
        report = ingestor.ingest(
            self.payload(b"title,price\nHalo,9.99\nZelda,39.99\n"),
            "games", key_field="title",
        )
        assert report.inserted == 1 and report.updated == 1
        table = tenant.table("games")
        assert table.find("title", "Halo")[0].values["price"] == 9.99

    def test_workbook_sheet_selection(self):
        doc = json.dumps({
            "workbook": "wb",
            "sheets": [
                {"name": "A", "header": ["x"], "rows": [["1"]]},
                {"name": "B", "header": ["y"], "rows": [["2"], ["3"]]},
            ],
        }).encode()
        tenant = self.make_tenant()
        report = DatasetIngestor(tenant).ingest(
            self.payload(doc, "inv.xlsw", "application/x-workbook"),
            "sheetb", sheet="B",
        )
        assert report.inserted == 2
        assert tenant.table("sheetb").schema.field_names() == ["y"]

    def test_ingest_rows_direct(self):
        tenant = self.make_tenant()
        report = DatasetIngestor(tenant).ingest_rows(
            [{"a": "1"}, {"a": "2"}], "direct"
        )
        assert report.inserted == 2
        with pytest.raises(IngestError):
            DatasetIngestor(tenant).ingest_rows([], "empty")

    def test_rss_payload_ingests(self, small_web):
        domain = next(iter(small_web.sites))
        xml = FeedPublisher(small_web).feed_xml(domain, max_items=4)
        tenant = self.make_tenant()
        report = DatasetIngestor(tenant).ingest(
            self.payload(xml, f"{domain}.rss", "application/rss+xml"),
            "news",
        )
        assert report.format == "rss"
        assert report.inserted > 0
        assert "link" in tenant.table("news").schema.field_names()
