"""Tests for the supplemental-source circuit breaker and rate limiter."""

import threading

import pytest

from repro.core.runtime import CircuitBreaker, RateLimiter
from repro.errors import QuotaExceededError
from repro.util import SimClock


class TestCircuitBreakerUnit:
    def test_opens_after_threshold(self):
        clock = SimClock(start_ms=0)
        breaker = CircuitBreaker(clock, failure_threshold=3,
                                 cooldown_ms=1000)
        for __ in range(2):
            breaker.record_failure("s")
            assert not breaker.is_open("s")
        breaker.record_failure("s")
        assert breaker.is_open("s")
        assert breaker.state("s") == "open"

    def test_success_resets_counter(self):
        breaker = CircuitBreaker(SimClock(), failure_threshold=2)
        breaker.record_failure("s")
        breaker.record_success("s")
        breaker.record_failure("s")
        assert not breaker.is_open("s")
        assert breaker.state("s") == "degraded"

    def test_half_open_after_cooldown(self):
        clock = SimClock(start_ms=0)
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown_ms=1000)
        breaker.record_failure("s")
        assert breaker.is_open("s")
        clock.advance(1000)
        assert not breaker.is_open("s")  # probe allowed
        # Probe fails -> circuit re-opens immediately.
        breaker.record_failure("s")
        assert breaker.is_open("s")

    def test_probe_success_closes(self):
        clock = SimClock(start_ms=0)
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown_ms=1000)
        breaker.record_failure("s")
        clock.advance(1000)
        assert not breaker.is_open("s")
        breaker.record_success("s")
        assert breaker.state("s") == "closed"

    def test_sources_independent(self):
        breaker = CircuitBreaker(SimClock(), failure_threshold=1)
        breaker.record_failure("a")
        assert breaker.is_open("a")
        assert not breaker.is_open("b")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CircuitBreaker(SimClock(), failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(SimClock(), cooldown_ms=0)

    def test_half_open_admits_exactly_one_probe(self):
        # Regression: before the probe's verdict is in, every *other*
        # caller must still see the circuit as open — otherwise a burst
        # of queries during half-open all hammer the sick service.
        clock = SimClock(start_ms=0)
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown_ms=1000)
        breaker.record_failure("s")
        clock.advance(1000)
        assert not breaker.is_open("s")       # the single probe
        assert breaker.state("s") == "half_open"
        assert breaker.is_open("s")           # second caller: blocked
        assert breaker.is_open("s")           # and the third
        breaker.record_success("s")
        assert not breaker.is_open("s")       # verdict in: closed
        assert breaker.state("s") == "closed"

    def test_concurrent_half_open_probes_admit_exactly_one(self):
        # The half-open gate must hold under real concurrency, not just
        # sequential calls: a burst of worker threads arriving together
        # after cooldown gets exactly one probe through.
        clock = SimClock(start_ms=0)
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown_ms=1000)
        breaker.record_failure("s")
        clock.advance(1000)
        workers = 16
        admitted = []
        barrier = threading.Barrier(workers)

        def probe():
            barrier.wait()
            if not breaker.is_open("s"):
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=probe)
                   for __ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1
        assert breaker.state("s") == "half_open"
        # The winning probe reports back; the circuit closes for all.
        breaker.record_success("s")
        assert breaker.state("s") == "closed"

    def test_failed_probe_restarts_cooldown(self):
        clock = SimClock(start_ms=0)
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown_ms=1000)
        breaker.record_failure("s")
        clock.advance(1000)
        assert not breaker.is_open("s")
        breaker.record_failure("s")
        # Re-opened *from the probe's failure time*: a fresh cooldown.
        clock.advance(999)
        assert breaker.is_open("s")
        clock.advance(1)
        assert not breaker.is_open("s")


class TestRateLimiterWindowBoundaries:
    """Sliding-window eviction judged at exact SimClock boundaries."""

    def test_evicts_exactly_at_window_edge(self):
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=2, window_ms=1000)
        limiter.check("app")          # t=0
        limiter.check("app")          # t=0, window now full
        clock.advance(999)
        with pytest.raises(QuotaExceededError):
            limiter.check("app")      # t=999: both t=0 events live
        clock.advance(1)
        # t=1000: the horizon is now-window = 0 and events at t <= 0
        # leave the window — capacity is back at the exact boundary.
        limiter.check("app")
        assert limiter.remaining("app") == 1

    def test_rejected_requests_do_not_consume_capacity(self):
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=1, window_ms=1000)
        limiter.check("app")
        for __ in range(3):
            with pytest.raises(QuotaExceededError):
                limiter.check("app")
        clock.advance(1000)
        # Only the single admitted request occupied the window; the
        # rejected ones must not have extended it.
        limiter.check("app")

    def test_window_slides_per_event_not_per_batch(self):
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=2, window_ms=1000)
        limiter.check("app")          # t=0
        clock.advance(500)
        limiter.check("app")          # t=500
        clock.advance(500)
        limiter.check("app")          # t=1000: t=0 evicted, t=500 live
        with pytest.raises(QuotaExceededError):
            limiter.check("app")      # t=500 + t=1000 still in window
        clock.advance(500)
        limiter.check("app")          # t=1500: t=500 evicted
        assert limiter.remaining("app") == 0


class TestCircuitBreakerIntegration:
    @pytest.fixture()
    def flaky_platform(self, tiny_web):
        from repro.core.platform import Symphony
        from repro.core.runtime import CircuitBreaker
        from repro.services.bus import ServiceBus
        from repro.services.samples import PricingService
        from tests.conftest import make_inventory_csv

        symphony = Symphony(web=tiny_web, use_authority=False)
        symphony.bus = ServiceBus(clock=symphony.clock,
                                  failure_probability=1.0, seed=21)
        symphony.bus.register(PricingService())
        symphony.runtime.circuit_breaker = CircuitBreaker(
            symphony.clock, failure_threshold=2, cooldown_ms=60_000)
        account = symphony.register_designer("Ann")
        games = symphony.web.entities["video_games"][:3]
        symphony.upload_http(account, "inv.csv",
                             make_inventory_csv(games), "inventory",
                             content_type="text/csv")
        inventory = symphony.add_proprietary_source(
            account, "inventory", ("title",))
        pricing = symphony.add_service_source(
            "Pricing", "pricing", "GET /prices/{sku}", "sku")
        session = symphony.designer().new_application(
            "Shop", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",))
        session.add_text(slot, "title")
        session.drag_source_onto_result_layout(
            slot, pricing.source_id, drive_fields=("title",))
        app_id = symphony.host(session)
        return symphony, app_id, games, pricing

    def test_circuit_opens_and_skips_calls(self, flaky_platform):
        symphony, app_id, games, pricing = flaky_platform
        before = symphony.bus.stats("pricing").calls
        # Two failing queries trip the breaker (threshold 2; each
        # query makes 1 call since there is one matching title).
        symphony.query(app_id, games[0])
        symphony.query(app_id, games[1])
        tripped_at = symphony.bus.stats("pricing").calls
        assert tripped_at > before
        response = symphony.query(app_id, games[2])
        assert symphony.bus.stats("pricing").calls == tripped_at
        assert any("circuit open" in w
                   for w in response.trace.warnings)

    def test_circuit_recovers_after_cooldown(self, flaky_platform):
        symphony, app_id, games, pricing = flaky_platform
        symphony.query(app_id, games[0])
        symphony.query(app_id, games[1])
        assert symphony.runtime.circuit_breaker.state(
            pricing.source_id) == "open"
        # Service recovers; cooldown elapses; probe succeeds.
        from repro.services.bus import ServiceBus
        from repro.services.samples import PricingService
        healthy = ServiceBus(clock=symphony.clock)
        healthy.register(PricingService())
        pricing._bus = healthy
        symphony.clock.advance(60_000)
        response = symphony.query(app_id, games[0])
        supplemental = list(
            response.views[0].supplemental.values())[0]
        assert supplemental.items
        assert symphony.runtime.circuit_breaker.state(
            pricing.source_id) == "closed"
