"""Tests for the batched supplemental-derivation mode (DESIGN.md §6)."""

import pytest

from repro.core.application import (
    ApplicationDefinition,
    ElementKind,
    LayoutElement,
    ResultLayout,
    SourceBinding,
    SourceRole,
    SourceSlot,
)
from repro.core.datasources import (
    DataSource,
    SourceItem,
    SourceKind,
    SourceQuery,
    SourceRegistry,
    SourceResult,
)
from repro.core.runtime import (
    ApplicationRegistry,
    QueryRequest,
    SymphonyRuntime,
)
from repro.util import SimClock


class CountingSource(DataSource):
    """Echo source that records queries and answers per needle."""

    def __init__(self, source_id, corpus):
        super().__init__(source_id, source_id, SourceKind.WEB)
        self.corpus = corpus  # list of (title, body)
        self.queries = []

    def fields(self):
        return ["title", "url", "snippet"]

    def search(self, query: SourceQuery) -> SourceResult:
        self.queries.append(query.text)
        # OR semantics: an item matches if any quoted phrase appears.
        needles = [part.strip('()" ').lower()
                   for part in query.text.split(" OR ")]
        items = []
        for i, (title, body) in enumerate(self.corpus):
            haystack = f"{title} {body}".lower()
            if any(needle and needle.split()[0] in haystack
                   for needle in needles):
                items.append(SourceItem(
                    item_id=f"{self.source_id}:{i}", title=title,
                    url=f"http://r.example/{i}", snippet=body,
                ))
        return SourceResult(self.source_id,
                            tuple(items[:query.count]), len(items))


class FixedPrimary(DataSource):
    def __init__(self, source_id, titles):
        super().__init__(source_id, source_id, SourceKind.PROPRIETARY)
        self.titles = titles

    def fields(self):
        return ["title"]

    def search(self, query: SourceQuery) -> SourceResult:
        items = tuple(SourceItem(item_id=t, title=t)
                      for t in self.titles[:query.count])
        return SourceResult(self.source_id, items, len(items))


def build(mode, titles, corpus):
    registry = SourceRegistry()
    primary = FixedPrimary("primary", titles)
    supp = CountingSource("reviews", corpus)
    registry.add(primary)
    registry.add(supp)
    app = ApplicationDefinition(
        app_id="app", name="A", owner_tenant="t",
        bindings=(
            SourceBinding("bp", "primary", SourceRole.PRIMARY,
                          max_results=len(titles)),
            SourceBinding("bs", "reviews", SourceRole.SUPPLEMENTAL,
                          drive_fields=("title",), max_results=2),
        ),
        slots=(SourceSlot(
            binding_id="bp",
            result_layout=ResultLayout((
                LayoutElement(ElementKind.TEXT, "title"),
            )),
            children=(SourceSlot(binding_id="bs"),),
        ),),
    )
    apps = ApplicationRegistry()
    apps.register(app)
    runtime = SymphonyRuntime(
        registry=registry, apps=apps, clock=SimClock(start_ms=0),
        cache_enabled=False, supplemental_mode=mode,
    )
    return runtime, supp


TITLES = ["Halo Odyssey", "Zelda Legends", "Braid Arena"]
CORPUS = [
    ("Halo Odyssey Review", "the definitive halo odyssey verdict"),
    ("Zelda Legends Guide", "zelda legends walkthrough"),
    ("Braid Arena Review", "braid arena impressions"),
    ("Unrelated Wine Piece", "cabernet tasting"),
]


class TestBatchedMode:
    def test_single_query_issued_per_binding(self):
        runtime, supp = build("batched", TITLES, CORPUS)
        runtime.handle_query(QueryRequest("app", "anything"))
        assert len(supp.queries) == 1
        assert " OR " in supp.queries[0]

    def test_per_result_mode_issues_one_per_view(self):
        runtime, supp = build("per_result", TITLES, CORPUS)
        runtime.handle_query(QueryRequest("app", "anything"))
        assert len(supp.queries) == len(TITLES)

    def test_batched_results_assigned_to_right_views(self):
        runtime, __ = build("batched", TITLES, CORPUS)
        response = runtime.handle_query(QueryRequest("app", "x"))
        by_title = {view.item.title: view.supplemental["bs"]
                    for view in response.views}
        assert by_title["Halo Odyssey"].items[0].title == \
            "Halo Odyssey Review"
        assert by_title["Zelda Legends"].items[0].title == \
            "Zelda Legends Guide"
        assert by_title["Braid Arena"].items[0].title == \
            "Braid Arena Review"

    def test_unrelated_items_not_assigned(self):
        runtime, __ = build("batched", TITLES, CORPUS)
        response = runtime.handle_query(QueryRequest("app", "x"))
        for view in response.views:
            titles = {i.title for i in view.supplemental["bs"].items}
            assert "Unrelated Wine Piece" not in titles

    def test_trace_labels_batched_stage(self):
        runtime, __ = build("batched", TITLES, CORPUS)
        trace = runtime.handle_query(QueryRequest("app", "x")).trace
        assert "batched" in trace.stage("supplemental").detail

    def test_max_results_respected_per_view(self):
        corpus = CORPUS + [
            ("Halo Odyssey Retrospective", "halo odyssey again"),
            ("Halo Odyssey Speedrun", "halo odyssey record"),
        ]
        runtime, __ = build("batched", TITLES, corpus)
        response = runtime.handle_query(QueryRequest("app", "x"))
        halo_view = next(v for v in response.views
                         if v.item.title == "Halo Odyssey")
        assert len(halo_view.supplemental["bs"].items) == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SymphonyRuntime(registry=SourceRegistry(),
                            apps=ApplicationRegistry(),
                            supplemental_mode="quantum")

    def test_modes_agree_on_primary_results(self):
        per_result, __ = build("per_result", TITLES, CORPUS)
        batched, __ = build("batched", TITLES, CORPUS)
        a = per_result.handle_query(QueryRequest("app", "x"))
        b = batched.handle_query(QueryRequest("app", "x"))
        assert [v.item.title for v in a.views] == \
            [v.item.title for v in b.views]
