"""Tests for BM25, PageRank, recency boosting, and score blending."""

import pytest
from hypothesis import given, strategies as st

from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument
from repro.searchengine.index import InvertedIndex
from repro.searchengine.ranking import (
    BM25Parameters,
    BM25Scorer,
    blend_scores,
    pagerank,
    recency_boost,
)


@pytest.fixture()
def index():
    idx = InvertedIndex(Analyzer())
    docs = [
        ("short", "halo review"),
        ("long", "halo " + "filler " * 60 + "review"),
        ("repeat", "halo halo halo review"),
        ("other", "zelda walkthrough guide"),
        ("common", "game game game game"),
    ]
    for doc_id, body in docs:
        idx.add(FieldedDocument(doc_id, {"body": body}))
    return idx


class TestBM25:
    def test_matching_beats_nonmatching(self, index):
        scorer = BM25Scorer(index, ["body"])
        assert scorer.score("short", ["halo"]) > 0
        assert scorer.score("other", ["halo"]) == 0

    def test_term_frequency_saturates(self, index):
        """More occurrences help, but sub-linearly (k1 saturation)."""
        scorer = BM25Scorer(index, ["body"])
        single = scorer.score("short", ["halo"])
        triple = scorer.score("repeat", ["halo"])
        assert triple > single
        assert triple < 3 * single

    def test_length_normalization_prefers_short(self, index):
        scorer = BM25Scorer(index, ["body"])
        assert scorer.score("short", ["halo"]) > \
            scorer.score("long", ["halo"])

    def test_rare_terms_weigh_more(self, index):
        """idf: 'zelda' (df=1) outweighs 'halo' (df=3) in its own doc."""
        scorer = BM25Scorer(index, ["body"])
        zelda = scorer.score("other", ["zelda"])
        halo = scorer.score("short", ["halo"])
        assert zelda > halo

    def test_field_boost_scales(self, index):
        plain = BM25Scorer(index, ["body"], BM25Parameters())
        boosted = BM25Scorer(
            index, ["body"], BM25Parameters(field_boosts={"body": 2.0})
        )
        assert boosted.score("short", ["halo"]) == pytest.approx(
            2.0 * plain.score("short", ["halo"])
        )

    def test_multi_term_additive(self, index):
        scorer = BM25Scorer(index, ["body"])
        both = scorer.score("short", ["halo", "review"])
        assert both == pytest.approx(
            scorer.score("short", ["halo"])
            + scorer.score("short", ["review"])
        )

    def test_score_many(self, index):
        scorer = BM25Scorer(index, ["body"])
        scores = scorer.score_many(["short", "other"], ["halo"])
        assert scores["short"] > 0 and scores["other"] == 0

    def test_idf_positive_even_for_ubiquitous_term(self):
        idx = InvertedIndex(Analyzer())
        for i in range(5):
            idx.add(FieldedDocument(f"d{i}", {"body": "halo everywhere"}))
        scorer = BM25Scorer(idx, ["body"])
        assert scorer.score("d0", ["halo"]) > 0


class TestPageRank:
    def test_empty_graph(self):
        assert pagerank({}) == {}

    def test_probability_distribution(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_cycle_uniform(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        ranks = pagerank(graph)
        assert ranks["a"] == pytest.approx(ranks["b"], abs=1e-9)
        assert ranks["b"] == pytest.approx(ranks["c"], abs=1e-9)

    def test_authority_concentrates_on_popular_node(self):
        graph = {"a": ["hub"], "b": ["hub"], "c": ["hub"], "hub": ["a"]}
        ranks = pagerank(graph)
        assert ranks["hub"] == max(ranks.values())

    def test_dangling_nodes_handled(self):
        graph = {"a": ["sink"], "sink": []}
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
        assert ranks["sink"] > ranks["a"]

    def test_targets_only_nodes_included(self):
        graph = {"a": ["b"]}
        ranks = pagerank(graph)
        assert "b" in ranks

    @given(st.dictionaries(
        st.sampled_from("abcdef"),
        st.lists(st.sampled_from("abcdef"), max_size=4),
        min_size=1, max_size=6,
    ))
    def test_always_sums_to_one(self, graph):
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-4)
        assert all(value >= 0 for value in ranks.values())


class TestRecencyBoost:
    DAY_MS = 86_400_000

    def test_fresh_is_one(self):
        now = 1_000 * self.DAY_MS
        assert recency_boost(now, now) == pytest.approx(1.0)

    def test_half_life(self):
        now = 1_000 * self.DAY_MS
        month_old = now - 30 * self.DAY_MS
        assert recency_boost(month_old, now, half_life_days=30) == \
            pytest.approx(0.5)

    def test_unknown_published_is_zero(self):
        assert recency_boost(0, 12345) == 0.0

    def test_future_clamped(self):
        now = 1_000 * self.DAY_MS
        assert recency_boost(now + self.DAY_MS, now) == 1.0

    def test_monotone_decreasing(self):
        now = 1_000 * self.DAY_MS
        boosts = [recency_boost(now - d * self.DAY_MS, now)
                  for d in range(0, 120, 10)]
        assert boosts == sorted(boosts, reverse=True)


class TestBlend:
    def test_zero_prior_identity(self):
        assert blend_scores(3.0, 0.0) == 3.0

    def test_prior_monotone(self):
        assert blend_scores(3.0, 1.0) > blend_scores(3.0, 0.5) > \
            blend_scores(3.0, 0.0)

    def test_zero_relevance_stays_zero(self):
        assert blend_scores(0.0, 1.0) == 0.0

    def test_weight_controls_magnitude(self):
        assert blend_scores(2.0, 1.0, prior_weight=0.5) == \
            pytest.approx(3.0)
