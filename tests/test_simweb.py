"""Tests for the synthetic web: vocabularies, model, generator."""

import pytest

from repro.errors import NotFoundError
from repro.simweb.generator import WebGenerator, WebSpec
from repro.simweb.model import Page, Site, SyntheticWeb
from repro.simweb.vocab import TOPICS, topic_vocabulary
from repro.util import deterministic_rng


class TestVocabulary:
    def test_all_topics_load(self):
        for topic in TOPICS:
            vocab = topic_vocabulary(topic)
            assert vocab.words and vocab.entities and vocab.sites

    def test_unknown_topic(self):
        with pytest.raises(KeyError):
            topic_vocabulary("astrology")

    def test_paper_review_sites_present(self):
        sites = topic_vocabulary("video_games").sites
        for domain in ("gamespot.com", "ign.com", "teamxbox.com"):
            assert domain in sites

    def test_sample_words_deterministic(self):
        vocab = topic_vocabulary("wine")
        a = vocab.sample_words(deterministic_rng(1), 20)
        b = vocab.sample_words(deterministic_rng(1), 20)
        assert a == b

    def test_sample_words_zipf_head_heavy(self):
        """Early-ranked words should appear more often than tail words."""
        vocab = topic_vocabulary("movies")
        words = vocab.sample_words(deterministic_rng(3), 3000)
        counts = {}
        for word in words:
            counts[word] = counts.get(word, 0) + 1
        head = counts.get(vocab.words[0], 0)
        tail = counts.get(vocab.words[-1], 0)
        assert head > tail

    def test_sentence_shape(self):
        vocab = topic_vocabulary("travel")
        sentence = vocab.sample_sentence(deterministic_rng(5))
        assert sentence.endswith(".")
        assert sentence[0].isupper()

    def test_entity_two_part_names(self):
        vocab = topic_vocabulary("video_games")
        rng = deterministic_rng(9)
        names = {vocab.sample_entity(rng) for _ in range(50)}
        assert any(" " in name for name in names)


class TestModel:
    def _page(self, url="http://a.example/p1", site="a.example",
              outlinks=()):
        return Page(url=url, site=site, topic="tech", title="T",
                    body="b" * 300, outlinks=tuple(outlinks))

    def test_add_and_get(self):
        web = SyntheticWeb()
        web.add_site(Site("a.example", "tech", "A"))
        page = self._page()
        web.add_page(page)
        assert web.site("a.example").topic == "tech"
        assert web.page(page.url) is page

    def test_missing_raises(self):
        web = SyntheticWeb()
        with pytest.raises(NotFoundError):
            web.site("nope.example")
        with pytest.raises(NotFoundError):
            web.page("http://nope.example/x")

    def test_snippet_truncates(self):
        assert len(self._page().snippet) == 180

    def test_link_graph_drops_dangling(self):
        web = SyntheticWeb()
        p1 = self._page(url="http://a.example/1",
                        outlinks=["http://a.example/2",
                                  "http://gone.example/x"])
        p2 = self._page(url="http://a.example/2")
        web.add_page(p1)
        web.add_page(p2)
        graph = web.link_graph()
        assert graph["http://a.example/1"] == ["http://a.example/2"]

    def test_domain_link_graph_excludes_self_links(self):
        web = SyntheticWeb()
        web.add_site(Site("a.example", "tech", "A"))
        web.add_site(Site("b.example", "tech", "B"))
        web.add_page(self._page(
            url="http://a.example/1", site="a.example",
            outlinks=["http://a.example/2", "http://b.example/1"],
        ))
        web.add_page(self._page(url="http://a.example/2",
                                site="a.example"))
        web.add_page(self._page(url="http://b.example/1",
                                site="b.example"))
        graph = web.domain_link_graph()
        assert graph["a.example"] == {"b.example": 1}

    def test_pages_on(self):
        web = SyntheticWeb()
        web.add_page(self._page(url="http://a.example/1",
                                site="a.example"))
        web.add_page(self._page(url="http://b.example/1",
                                site="b.example"))
        assert len(web.pages_on("a.example")) == 1


class TestGenerator:
    def test_deterministic(self):
        spec = WebSpec(seed=5, topics=("wine",), extra_sites_per_topic=1,
                       pages_per_site=4, images_per_site=2,
                       videos_per_site=1, news_per_site=2)
        a = WebGenerator(spec).build()
        b = WebGenerator(spec).build()
        assert sorted(a.pages) == sorted(b.pages)
        assert a.stats() == b.stats()

    def test_different_seeds_differ(self):
        base = dict(topics=("wine",), extra_sites_per_topic=1,
                    pages_per_site=4, images_per_site=2,
                    videos_per_site=1, news_per_site=2)
        a = WebGenerator(WebSpec(seed=1, **base)).build()
        b = WebGenerator(WebSpec(seed=2, **base)).build()
        assert sorted(a.pages) != sorted(b.pages)

    def test_counts_match_spec(self, small_web):
        # 3 topics; each has well-known sites + 1 extra.
        assert small_web.stats()["sites"] == len(small_web.sites)
        for site in small_web.sites.values():
            assert site.topic in ("video_games", "wine", "news")

    def test_entities_recorded_per_topic(self, small_web):
        assert set(small_web.entities) == {"video_games", "wine", "news"}
        for pool in small_web.entities.values():
            assert len(pool) == 30
            assert len(set(pool)) == 30

    def test_well_known_sites_cover_every_entity(self, small_web):
        """Every entity must have a page on each well-known site."""
        from repro.simweb.vocab import topic_vocabulary
        for topic in ("video_games", "wine"):
            known = topic_vocabulary(topic).sites
            for domain in known:
                covered = {p.entity for p in small_web.pages_on(domain)
                           if p.entity}
                assert set(small_web.entities[topic]) <= covered

    def test_entity_pages_mention_review(self, small_web):
        pages = [p for p in small_web.pages_on("gamespot.com")
                 if p.url.rstrip("0123456789").endswith("-e")]
        assert pages
        assert all("review" in p.body.lower() for p in pages)

    def test_outlinks_wired_and_valid(self, small_web):
        linked = 0
        for page in small_web.pages.values():
            for target in page.outlinks:
                assert target != page.url
                linked += 1
        assert linked > len(small_web.pages)  # densely connected

    def test_published_within_history(self, small_web):
        spec = WebSpec(seed=7)
        low = spec.epoch_ms
        high = spec.epoch_ms + spec.history_days * 86_400_000
        for page in small_web.pages.values():
            assert low <= page.published_ms <= high

    def test_well_known_authority_exceeds_average(self, small_web):
        known = set()
        for topic in ("video_games", "wine", "news"):
            known.update(topic_vocabulary(topic).sites)
        known_scores = [s.authority_hint for s in small_web.sites.values()
                        if s.domain in known]
        other_scores = [s.authority_hint for s in small_web.sites.values()
                        if s.domain not in known]
        assert known_scores and other_scores
        assert min(known_scores) >= 0.7
        assert sum(known_scores) / len(known_scores) > \
            sum(other_scores) / len(other_scores)
