"""Tests for the Table I baseline platforms and the live probe harness."""

import pytest

from repro.baselines import (
    EureksterPlatform,
    GoogleBasePlatform,
    GoogleCustomSearchPlatform,
    RollyoPlatform,
    YahooBossPlatform,
    build_table_one,
)
from repro.baselines.probe import SymphonyProbeAdapter, format_table
from repro.core.capability import TABLE_I_ROWS
from repro.errors import UnsupportedCapabilityError


@pytest.fixture()
def entity(small_web):
    return small_web.entities["video_games"][0]


class TestYahooBoss:
    def test_api_search_with_sites(self, engine, entity):
        boss = YahooBossPlatform(engine)
        response = boss.api_search(f'"{entity}"',
                                   sites=("gamespot.com",))
        assert response.results
        assert all(r.site == "gamespot.com" for r in response.results)

    def test_ads_ride_along_when_service_present(self, engine, entity):
        from repro.services.ads import AdService
        ads = AdService()
        advertiser = ads.create_advertiser("A", 10.0)
        ads.create_campaign(advertiser.advertiser_id,
                            [entity.split()[0]], 0.2, "Ad",
                            "http://ad.example")
        boss = YahooBossPlatform(engine, ad_service=ads)
        response = boss.api_search(entity)
        assert response.ads  # mandatory ads

    def test_partner_only_upload(self, engine):
        boss = YahooBossPlatform(engine, partners=("acme",))
        with pytest.raises(UnsupportedCapabilityError):
            boss.upload_structured_data([{"a": 1}])
        assert boss.upload_structured_data(
            [{"a": 1}], partner_id="acme"
        ) == 1

    def test_mashup_merge_interleaves(self, engine):
        boss = YahooBossPlatform(engine)
        merged = boss.mashup_merge([1, 3, 5], [2, 4])
        assert merged == [1, 2, 3, 4, 5]

    def test_no_deployment_assistance(self, engine):
        assert YahooBossPlatform(engine).deployment_options() == []


class TestRollyo:
    def test_searchroll_restricts(self, engine, entity):
        rollyo = RollyoPlatform(engine)
        roll = rollyo.create_searchroll(
            "games", ("gamespot.com", "ign.com")
        )
        response = roll.search(f'"{entity}"')
        assert response.results
        assert {r.site for r in response.results} <= \
            {"gamespot.com", "ign.com"}

    def test_site_cap_25(self, engine):
        sites = tuple(f"s{i}.example" for i in range(40))
        roll = RollyoPlatform(engine).create_searchroll("big", sites)
        assert len(roll.sites) == 25

    def test_basic_styling_only(self, engine):
        roll = RollyoPlatform(engine).create_searchroll(
            "games", ("gamespot.com",)
        )
        roll.set_styling(color="red", font_family="Verdana")
        with pytest.raises(UnsupportedCapabilityError):
            roll.set_styling(animation="spin 2s")

    def test_search_box_snippet_only_deployment(self, engine):
        rollyo = RollyoPlatform(engine)
        rollyo.create_searchroll("games", ("gamespot.com",))
        snippet = rollyo.search_box_snippet("games")
        assert "<form" in snippet
        assert "rollyo.example" in snippet
        assert rollyo.deployment_options() == ["search-box-embed"]

    def test_no_proprietary_data(self, engine):
        with pytest.raises(UnsupportedCapabilityError):
            RollyoPlatform(engine).upload_structured_data([{"a": 1}])


class TestEurekster:
    def test_swicki_community_rerank(self, engine, entity):
        eurekster = EureksterPlatform(engine)
        swicki = eurekster.create_swicki(
            "games", ("gamespot.com", "ign.com", "teamxbox.com")
        )
        baseline = swicki.search(f'"{entity}"', count=5)
        assert len(baseline) >= 2
        promoted_url = baseline[-1].url
        for __ in range(5):
            swicki.record_community_click(promoted_url)
        reranked = swicki.search(f'"{entity}"', count=5)
        assert reranked[0].url == promoted_url

    def test_ads_mandatory_only_for_profit(self, engine):
        eurekster = EureksterPlatform(engine)
        eurekster.create_swicki("hobby", ("a.example",),
                                for_profit=False)
        eurekster.create_swicki("store", ("a.example",),
                                for_profit=True)
        assert not eurekster.ads_required_for("hobby")
        assert eurekster.ads_required_for("store")

    def test_policy_says_for_profit_only(self, engine):
        policy = EureksterPlatform(engine).monetization_policy()
        assert policy["ads_mandatory"] == "for-profit-only"


class TestGoogleCustom:
    def test_behaviour_tweaks(self, engine, entity):
        google = GoogleCustomSearchPlatform(engine)
        custom = google.create_engine(
            "games", sites=("gamespot.com", "ign.com"),
            augment_terms=("review",),
        )
        results = custom.search(f'"{entity}"')
        assert results
        assert {r.site for r in results} <= {"gamespot.com", "ign.com"}

    def test_preferred_urls_float_to_top(self, engine, entity):
        google = GoogleCustomSearchPlatform(engine)
        plain = google.create_engine("p", sites=("gamespot.com",
                                                 "ign.com"))
        baseline = plain.search(f'"{entity}"', count=5)
        target = baseline[-1].url
        tweaked = google.create_engine(
            "t", sites=("gamespot.com", "ign.com"),
            preferred_urls=(target,),
        )
        assert tweaked.search(f'"{entity}"', count=5)[0].url == target

    def test_embed_snippet(self, engine):
        google = GoogleCustomSearchPlatform(engine)
        google.create_engine("games")
        snippet = google.embed_snippet("games")
        assert "gcse-search" in snippet

    def test_no_proprietary_data(self, engine):
        with pytest.raises(UnsupportedCapabilityError):
            GoogleCustomSearchPlatform(engine).upload_structured_data(
                [{"a": 1}]
            )


class TestGoogleBase:
    def test_upload_then_surfaces_in_results(self, engine):
        base = GoogleBasePlatform(engine)
        base.upload_structured_data([
            {"title": "Vintage Wine Crate", "price": "25"},
            {"title": "Halo Poster", "price": "10"},
        ])
        page = base.search("vintage wine crate")
        assert page["base_items"]
        assert page["base_items"][0]["title"] == "Vintage Wine Crate"
        organic = base.search("wine")
        assert organic["web_results"]  # organic results still served

    def test_feed_upload_formats(self, engine, small_web):
        from repro.ingest.rss import FeedPublisher
        base = GoogleBasePlatform(engine)
        domain = next(iter(small_web.sites))
        xml = FeedPublisher(small_web).feed_xml(domain, max_items=3)
        assert base.upload_feed(xml, "rss") > 0
        assert base.upload_feed(b"title\tprice\nX\t1\n", "txt") == 1
        with pytest.raises(Exception):
            base.upload_feed(b"...", "pdf")

    def test_no_custom_sites(self, engine):
        base = GoogleBasePlatform(engine)
        assert not base.supports_custom_sites()
        with pytest.raises(UnsupportedCapabilityError):
            base.create_custom_search("x", ())

    def test_no_ui_no_monetization(self, engine):
        base = GoogleBasePlatform(engine)
        with pytest.raises(UnsupportedCapabilityError):
            base.ui_customization()
        with pytest.raises(UnsupportedCapabilityError):
            base.monetization_policy()


class TestTableOne:
    EXPECTED = {
        "Custom Sites": ["Supported", "Supported", "Supported",
                         "Supported", "Supported", "No"],
        "Monetization": [
            "Ads voluntary (revenue-sharing)",
            "Ads mandatory",
            "Show your own ads",
            "Ads mandatory for for-profit entities.",
            "Ads mandatory for for-profit entities.",
            "No",
        ],
        "Custom UI": [
            "Drag'n'drop",
            "Mashup Python library, HTML/CSS",
            "Basic styling (e.g., colors, fonts)",
            "Basic styling (e.g., colors, fonts)",
            "Basic styling (e.g., colors, fonts)",
            "No",
        ],
    }

    def build(self, symphony):
        platforms = [
            SymphonyProbeAdapter(symphony),
            YahooBossPlatform(symphony.engine,
                              ad_service=symphony.ads),
            RollyoPlatform(symphony.engine),
            EureksterPlatform(symphony.engine),
            GoogleCustomSearchPlatform(symphony.engine),
            GoogleBasePlatform(symphony.engine),
        ]
        return build_table_one(platforms)

    def test_columns_order(self, symphony):
        table = self.build(symphony)
        assert table["columns"] == [
            "Symphony", "Y! BOSS", "Rollyo", "Eurekster",
            "Google Custom", "Google Base",
        ]

    def test_all_rows_present(self, symphony):
        table = self.build(symphony)
        assert tuple(table["rows"]) == TABLE_I_ROWS

    def test_cells_match_paper(self, symphony):
        table = self.build(symphony)
        for row_name, expected in self.EXPECTED.items():
            assert table["rows"][row_name] == expected

    def test_probes_consistent_with_claims(self, symphony):
        table = self.build(symphony)
        assert table["problems"] == []

    def test_probe_outcomes_observed_behaviour(self, symphony):
        table = self.build(symphony)
        by_system = {o.system: o for o in table["outcomes"]}
        assert by_system["Symphony"].upload_worked
        assert by_system["Google Base"].upload_worked
        assert not by_system["Rollyo"].upload_worked
        assert not by_system["Google Base"].custom_sites_worked
        assert by_system["Rollyo"].custom_sites_worked

    def test_format_table_renders(self, symphony):
        text = format_table(self.build(symphony))
        assert "Symphony" in text and "Google Base" in text
        assert "Custom Sites" in text


class TestCapabilityDescriptors:
    """The machine-readable capability card each platform hands the
    federation registry must agree with its Table I profile."""

    PLATFORMS = (RollyoPlatform, EureksterPlatform,
                 GoogleCustomSearchPlatform, YahooBossPlatform,
                 GoogleBasePlatform)

    def test_descriptor_agrees_with_profile(self, engine):
        for platform_cls in self.PLATFORMS:
            platform = platform_cls(engine)
            profile = platform.capability_profile()
            descriptor = platform.capability_descriptor()
            assert descriptor.system == profile.system
            assert descriptor.search_api == profile.search_api
            assert descriptor.supports_sites \
                == platform.supports_custom_sites()
            assert descriptor.generation_keys == ("corpus",)
            assert descriptor.cost_per_query > 0

    def test_backend_ids_are_slugs(self, engine):
        ids = {platform_cls(engine).capability_descriptor().backend_id
               for platform_cls in self.PLATFORMS}
        assert ids == {"rollyo", "eurekster", "google-custom",
                       "y-boss", "google-base"}
        for backend_id in ids:
            assert backend_id == backend_id.lower()
            assert " " not in backend_id

    def test_google_base_supports_fielded_queries(self, engine):
        assert GoogleBasePlatform(engine) \
            .capability_descriptor().supports_fielded
        assert not RollyoPlatform(engine) \
            .capability_descriptor().supports_fielded

    def test_descriptor_round_trips_to_dict(self, engine):
        descriptor = RollyoPlatform(engine).capability_descriptor()
        as_dict = descriptor.to_dict()
        assert as_dict["backend_id"] == "rollyo"
        assert as_dict["supports_sites"] is True
