"""Tests for analytics: aggregation, relevance signals, recommendation,
social feedback, composition."""

import pytest

from repro.analytics import (
    CommunityFeedback,
    LogAggregator,
    RelevanceSignalExporter,
    SupplementalRecommender,
    compose_applications,
)
from repro.core.application import SourceRole
from repro.errors import ValidationError
from repro.searchengine.logs import ClickEvent, QueryEvent, QueryLog
from repro.storage.records import FieldSpec, FieldType, RecordTable, Schema


def fill_log(log, app_id="app-1"):
    for i, query in enumerate(["halo review", "halo trailer", "zelda"]):
        log.log_query(QueryEvent(
            timestamp_ms=i, query=query, vertical="app",
            app_id=app_id, session_id=f"s{i % 2}",
        ))
    clicks = [
        ("halo review", "http://gamespot.com/halo-review"),
        ("halo review", "http://ign.com/halo"),
        ("zelda", "http://gamespot.com/zelda-guide"),
    ]
    for query, url in clicks:
        log.log_click(ClickEvent(
            timestamp_ms=0, query=query, url=url, app_id=app_id,
            session_id="s0",
        ))
    log.log_click(ClickEvent(
        timestamp_ms=0, query="halo", url="http://ads.example/x",
        app_id=app_id, is_ad=True,
    ))


class TestAggregation:
    def test_profile_counts(self):
        log = QueryLog()
        fill_log(log)
        profile = LogAggregator(log).profile("app-1")
        assert profile.query_count == 3
        assert profile.click_count == 4  # includes the ad click

    def test_term_frequencies_analyzed(self):
        log = QueryLog()
        fill_log(log)
        profile = LogAggregator(log).profile("app-1")
        assert profile.term_frequencies["halo"] == 2
        assert "review" in profile.term_frequencies

    def test_ad_clicks_excluded_from_site_stats(self):
        log = QueryLog()
        fill_log(log)
        profile = LogAggregator(log).profile("app-1")
        assert "ads.example" not in profile.site_clicks
        assert profile.site_clicks["gamespot.com"] == 2

    def test_sessions_counted(self):
        log = QueryLog()
        fill_log(log)
        assert LogAggregator(log).profile("app-1").sessions == 2

    def test_app_ids_discovered(self):
        log = QueryLog()
        fill_log(log, "app-1")
        fill_log(log, "app-2")
        assert LogAggregator(log).app_ids() == ["app-1", "app-2"]

    def test_top_terms_and_sites_ordered(self):
        log = QueryLog()
        fill_log(log)
        profile = LogAggregator(log).profile("app-1")
        assert profile.top_terms(1)[0][0] == "halo"
        assert profile.top_sites(1)[0] == ("gamespot.com", 2)


class TestRelevanceSignals:
    def test_boosts_log_scaled_and_capped(self):
        log = QueryLog()
        fill_log(log)
        profile = LogAggregator(log).profile("app-1")
        boosts = RelevanceSignalExporter(max_boost=0.5).url_boosts(
            [profile]
        )
        assert boosts
        assert max(boosts.values()) == 0.5
        assert all(0 < b <= 0.5 for b in boosts.values())

    def test_apply_to_engine_changes_prior(self, small_web):
        from repro.searchengine.engine import build_engine
        engine = build_engine(small_web, use_authority=False)
        url = next(iter(small_web.pages))
        log = QueryLog()
        log.log_click(ClickEvent(timestamp_ms=0, query="x", url=url,
                                 app_id="app-1"))
        profile = LogAggregator(log).profile("app-1")
        changed = RelevanceSignalExporter().apply_to_engine(
            engine, [profile]
        )
        assert changed == 1
        assert engine.vertical("web").authority[url] > 0

    def test_unknown_urls_skipped(self, small_web):
        from repro.searchengine.engine import build_engine
        engine = build_engine(small_web, use_authority=False)
        log = QueryLog()
        log.log_click(ClickEvent(timestamp_ms=0, query="x",
                                 url="http://offweb.example/p",
                                 app_id="app-1"))
        profile = LogAggregator(log).profile("app-1")
        assert RelevanceSignalExporter().apply_to_engine(
            engine, [profile]
        ) == 0

    def test_community_boost_improves_rank(self, small_web):
        """Clicked page should rise for a query it matches."""
        from repro.searchengine.engine import build_engine, \
            SearchOptions
        engine = build_engine(small_web, use_authority=False)
        entity = small_web.entities["video_games"][2]
        baseline = engine.search("web", f'"{entity}"',
                                 SearchOptions(count=10))
        target = baseline.results[-1]
        log = QueryLog()
        for __ in range(10):
            log.log_click(ClickEvent(timestamp_ms=0, query=entity,
                                     url=target.url, app_id="a"))
        profile = LogAggregator(log).profile("a")
        RelevanceSignalExporter(max_boost=5.0).apply_to_engine(
            engine, [profile]
        )
        boosted = engine.search("web", f'"{entity}"',
                                SearchOptions(count=10))
        old_rank = baseline.urls().index(target.url)
        new_rank = boosted.urls().index(target.url)
        assert new_rank < old_rank


class TestRecommender:
    def make_table(self, entities):
        schema = Schema((FieldSpec("title", FieldType.STRING),))
        table = RecordTable("inventory", schema)
        for name in entities:
            table.insert({"title": name})
        return table

    def test_recommends_covering_sites(self, engine, small_web):
        table = self.make_table(small_web.entities["video_games"][:8])
        recommender = SupplementalRecommender(engine)
        recommendations = recommender.recommend(
            table, "title", count=5, probe_suffix="review"
        )
        assert recommendations
        sites = [r.site for r in recommendations]
        # The well-known review sites cover every entity, so at least
        # one of them must be recommended.
        assert set(sites) & {"gamespot.com", "ign.com", "teamxbox.com"}
        scores = [r.score for r in recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_empty_table_no_recommendations(self, engine):
        table = self.make_table([])
        assert SupplementalRecommender(engine).recommend(
            table, "title"
        ) == []

    def test_coverage_fraction_bounded(self, engine, small_web):
        table = self.make_table(small_web.entities["video_games"][:5])
        recommendations = SupplementalRecommender(engine).recommend(
            table, "title", count=10
        )
        assert all(0 < r.coverage <= 1 for r in recommendations)


class TestCommunityFeedback:
    class Item:
        def __init__(self, url, score):
            self.url = url
            self.score = score

    def test_wilson_bounds(self):
        feedback = CommunityFeedback()
        tally = feedback.tally("a", "http://x.example/1")
        assert tally.wilson_lower_bound() == 0.0
        for __ in range(10):
            feedback.vote_up("a", "http://x.example/1")
        high = feedback.tally("a", "http://x.example/1")
        assert 0.5 < high.wilson_lower_bound() < 1.0

    def test_single_vote_barely_moves(self):
        feedback = CommunityFeedback()
        feedback.vote_up("a", "u")
        one = feedback.tally("a", "u").wilson_lower_bound()
        for __ in range(19):
            feedback.vote_up("a", "u")
        many = feedback.tally("a", "u").wilson_lower_bound()
        assert many > one

    def test_rerank_promotes_upvoted(self):
        feedback = CommunityFeedback(vote_weight=1.0)
        items = [self.Item("http://a.example", 1.0),
                 self.Item("http://b.example", 0.9)]
        for __ in range(20):
            feedback.vote_up("app", "http://b.example")
        reranked = feedback.rerank("app", items)
        assert reranked[0].url == "http://b.example"

    def test_downvotes_demote(self):
        feedback = CommunityFeedback(vote_weight=1.0)
        items = [self.Item("http://a.example", 1.0),
                 self.Item("http://b.example", 0.99)]
        for __ in range(20):
            feedback.vote_up("app", "http://a.example")
            feedback.vote_down("app", "http://b.example")
        reranked = feedback.rerank("app", items)
        assert reranked[0].url == "http://a.example"

    def test_votes_scoped_per_app(self):
        feedback = CommunityFeedback()
        feedback.vote_up("app-1", "u")
        assert feedback.tally("app-2", "u").total == 0


class TestComposition:
    def test_compose_two_gamerqueen_like_apps(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        app = symphony.apps.get(app_id)
        composed = compose_applications(
            "MegaHub", "tenant-1", [app, app]
        )
        composed.validate()
        assert len(composed.bindings) == 2 * len(app.bindings)
        assert len(composed.slots) == 2 * len(app.slots)
        # Fresh binding ids, no collisions.
        ids = [b.binding_id for b in composed.bindings]
        assert len(ids) == len(set(ids))

    def test_composed_app_executes(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        app = symphony.apps.get(app_id)
        composed = compose_applications(
            "MegaHub", "tenant-1", [app, app]
        )
        composed_id = symphony.host(composed)
        response = symphony.query(composed_id, games[0])
        # Both constituent slots answer the query.
        slot_ids = {v.slot_binding_id for v in response.views}
        assert len(slot_ids) == 2

    def test_headings_prefixed_with_source_app(self, gamerqueen):
        symphony, app_id, __ = gamerqueen
        app = symphony.apps.get(app_id)
        composed = compose_applications("Hub", "t", [app, app])
        assert all(slot.heading.startswith("GamerQueen")
                   for slot in composed.slots)

    def test_requires_two_apps(self, gamerqueen):
        symphony, app_id, __ = gamerqueen
        app = symphony.apps.get(app_id)
        with pytest.raises(ValidationError):
            compose_applications("Solo", "t", [app])

    def test_supplemental_structure_preserved(self, gamerqueen):
        symphony, app_id, __ = gamerqueen
        app = symphony.apps.get(app_id)
        composed = compose_applications("Hub", "t", [app, app])
        for slot in composed.slots:
            assert len(slot.children) == len(app.slots[0].children)
            for child in slot.children:
                binding = composed.binding(child.binding_id)
                assert binding.role == SourceRole.SUPPLEMENTAL
                assert binding.drive_fields == ("title",)
