"""Integration tests for social search (future work item 3) wired into
the runtime, plus the recommend-supplemental facade."""

import pytest

from tests.conftest import make_inventory_csv


@pytest.fixture()
def voting_app(symphony, designer_account):
    """An app whose primary query returns several near-tied results."""
    sym = symphony
    games = sym.web.entities["video_games"][:6]
    rows = ["title,producer,detail_url"]
    for i, game in enumerate(games):
        # Shared word "classic" so one query matches many rows with
        # similar scores.
        rows.append(f"Classic {game},Studio,"
                    f"http://shop.example/items/{i}")
    sym.upload_http(designer_account, "inv.csv",
                    "\n".join(rows).encode(), "inventory",
                    content_type="text/csv")
    inventory = sym.add_proprietary_source(
        designer_account, "inventory", ("title",))
    session = sym.designer().new_application(
        "Votes", designer_account.tenant.tenant_id)
    slot = session.drag_source_onto_app(
        inventory.source_id, max_results=5, search_fields=("title",))
    session.add_hyperlink(slot, "title", href_field="detail_url")
    app_id = sym.host(session)
    return sym, app_id


class TestSocialSearchIntegration:
    def test_votes_rerank_primary_results(self, voting_app):
        sym, app_id = voting_app
        sym.enable_social_search(vote_weight=2.0)
        baseline = sym.query(app_id, "classic")
        assert len(baseline.views) >= 3
        target = baseline.views[-1].item
        for __ in range(25):
            sym.vote(app_id, target.url, up=True)
        sym.runtime.cache.clear()  # votes must re-apply on fresh data
        boosted = sym.query(app_id, "classic")
        urls = [view.item.url for view in boosted.views]
        assert urls.index(target.url) < \
            [v.item.url for v in baseline.views].index(target.url)

    def test_downvotes_demote(self, voting_app):
        sym, app_id = voting_app
        sym.enable_social_search(vote_weight=2.0)
        baseline = sym.query(app_id, "classic")
        top = baseline.views[0].item
        runner_up = baseline.views[1].item
        for __ in range(25):
            sym.vote(app_id, top.url, up=False)
            sym.vote(app_id, runner_up.url, up=True)
        sym.runtime.cache.clear()
        reranked = sym.query(app_id, "classic")
        urls = [view.item.url for view in reranked.views]
        assert urls.index(runner_up.url) < urls.index(top.url)

    def test_votes_scoped_per_app(self, voting_app):
        sym, app_id = voting_app
        feedback = sym.enable_social_search()
        sym.vote(app_id, "http://shop.example/items/0")
        assert feedback.tally("other-app",
                              "http://shop.example/items/0").total == 0

    def test_vote_without_enable_auto_enables(self, voting_app):
        sym, app_id = voting_app
        assert sym.runtime.community_feedback is None
        sym.vote(app_id, "http://shop.example/items/0")
        assert sym.runtime.community_feedback is not None

    def test_without_social_search_order_is_pure_relevance(self,
                                                           voting_app):
        sym, app_id = voting_app
        first = sym.query(app_id, "classic")
        again = sym.query(app_id, "classic")
        assert [v.item.url for v in first.views] == \
            [v.item.url for v in again.views]


class TestRecommendFacade:
    def test_recommend_supplemental_via_platform(self, symphony,
                                                 designer_account):
        sym = symphony
        games = sym.web.entities["video_games"][:6]
        sym.upload_http(designer_account, "inv.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        recommendations = sym.recommend_supplemental(
            designer_account, "inventory", "title",
            probe_suffix="review",
        )
        assert recommendations
        sites = {r.site for r in recommendations}
        assert sites & {"gamespot.com", "ign.com", "teamxbox.com"}

    def test_recommendation_requires_authorized_account(self, symphony):
        sym = symphony
        intruder = sym.register_designer("Intruder")
        from repro.errors import NotFoundError
        with pytest.raises(NotFoundError):
            sym.recommend_supplemental(intruder, "inventory", "title")
