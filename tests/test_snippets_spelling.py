"""Tests for query-biased snippets and spelling suggestion."""

import pytest
from hypothesis import given, strategies as st

from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument
from repro.searchengine.index import InvertedIndex
from repro.searchengine.snippets import best_window, highlight
from repro.searchengine.spelling import SpellingCorrector, edit_distance


@pytest.fixture()
def analyzer():
    return Analyzer()


class TestBestWindow:
    def test_window_centres_on_matches(self, analyzer):
        text = ("filler " * 40) + "the halo review everyone wanted " \
            + ("padding " * 40)
        snippet = best_window(text, ["halo", "review"], analyzer,
                              width=10)
        assert "halo" in snippet and "review" in snippet
        assert snippet.startswith("… ")

    def test_leading_window_when_no_terms(self, analyzer):
        text = "alpha beta gamma delta"
        assert best_window(text, [], analyzer, width=2) == "alpha beta …"

    def test_no_match_falls_back_to_lead(self, analyzer):
        text = "alpha beta gamma delta epsilon"
        snippet = best_window(text, ["zzz"], analyzer, width=3)
        assert snippet == "alpha beta gamma …"

    def test_short_text_unmarked(self, analyzer):
        assert best_window("only four words here", ["words"],
                           analyzer, width=10) == "only four words here"

    def test_empty_text(self, analyzer):
        assert best_window("", ["x"], analyzer) == ""

    def test_stemmed_variants_count(self, analyzer):
        text = ("pad " * 30) + "many reviews praised it " + ("pad " * 30)
        snippet = best_window(text, ["review"], analyzer, width=8)
        assert "reviews" in snippet

    @given(st.lists(st.sampled_from(["halo", "game", "pad", "review"]),
                    min_size=1, max_size=60))
    def test_window_is_substring_of_text(self, words):
        analyzer = Analyzer()
        text = " ".join(words)
        snippet = best_window(text, ["halo"], analyzer, width=10)
        core = snippet.strip("… ").strip()
        assert core in text


class TestHighlight:
    def test_wraps_matches(self, analyzer):
        out = highlight("great halo review", ["halo"], analyzer)
        assert out == "great <b>halo</b> review"

    def test_stemmed_match_highlighted(self, analyzer):
        out = highlight("many reviews", ["review"], analyzer)
        assert "<b>reviews</b>" in out

    def test_no_terms_identity(self, analyzer):
        assert highlight("text", [], analyzer) == "text"

    def test_custom_tags(self, analyzer):
        out = highlight("halo", ["halo"], analyzer, "<em>", "</em>")
        assert out == "<em>halo</em>"


class TestEditDistance:
    def test_identity(self):
        assert edit_distance("halo", "halo") == 0

    def test_substitution(self):
        assert edit_distance("halo", "hale") == 1

    def test_insertion_deletion(self):
        assert edit_distance("halo", "haloo") == 1
        assert edit_distance("halo", "hal") == 1

    def test_transposition_costs_two(self):
        assert edit_distance("halo", "ahlo") == 2

    def test_cap_early_exit(self):
        assert edit_distance("aaaa", "zzzzzzzz", cap=3) == 3

    @given(st.text(alphabet="abc", max_size=8),
           st.text(alphabet="abc", max_size=8))
    def test_symmetric(self, a, b):
        assert edit_distance(a, b, cap=10) == edit_distance(b, a,
                                                            cap=10)

    @given(st.text(alphabet="abc", max_size=8))
    def test_zero_iff_equal(self, a):
        assert edit_distance(a, a) == 0


class TestSpellingCorrector:
    @pytest.fixture()
    def index(self):
        idx = InvertedIndex(Analyzer())
        docs = [
            ("d1", "halo review game"),
            ("d2", "halo game console"),
            ("d3", "zelda game guide"),
            ("d4", "halo trailer"),
        ]
        for doc_id, body in docs:
            idx.add(FieldedDocument(doc_id, {"body": body}))
        return idx

    def test_corrects_typo_to_frequent_term(self, index):
        corrector = SpellingCorrector(index)
        assert corrector.suggest("halp") == "halo"

    def test_known_terms_untouched(self, index):
        corrector = SpellingCorrector(index)
        assert corrector.suggest("halo") is None

    def test_too_far_no_suggestion(self, index):
        corrector = SpellingCorrector(index)
        assert corrector.suggest("xxxxxxxxxx") is None

    def test_frequency_breaks_ties(self, index):
        # "galo" is distance 1 from "halo"(freq 3) and "game"(... no,
        # distance 2). halo wins by distance anyway; check frequency
        # preference between zelda(1)/game(3)-adjacent typos.
        corrector = SpellingCorrector(index, min_frequency=1)
        assert corrector.suggest("gamr") == "game"

    def test_min_frequency_filters_rare_terms(self, index):
        strict = SpellingCorrector(index, min_frequency=3)
        assert not strict.known("zelda")  # appears once only

    def test_suggest_query_partial_correction(self, index):
        corrector = SpellingCorrector(index)
        corrected = corrector.suggest_query(["halp", "game"])
        assert corrected == ["halo", "game"]
        assert corrector.suggest_query(["halo", "game"]) is None


class TestEngineIntegration:
    def test_zero_hit_query_gets_suggestion(self, engine, small_web):
        response = engine.search("web", "reviw zzqqxx")
        assert response.total_matches == 0
        assert response.suggestion is not None
        assert "review" in response.suggestion

    def test_hit_query_has_no_suggestion(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        response = engine.search("web", entity)
        assert response.suggestion is None

    def test_snippets_contain_query_terms(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        response = engine.search("web", f'"{entity}" review')
        head = entity.split()[0].lower()
        assert any(head in r.snippet.lower() for r in response.results)
