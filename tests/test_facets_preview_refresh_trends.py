"""Tests for facets, designer preview, scheduled refresh, and trends."""

import pytest

from repro.analytics.trends import compute_trends
from repro.errors import (
    ConfigurationError,
    DuplicateError,
    IngestError,
    NotFoundError,
    QueryError,
)
from repro.ingest.refresh import RefreshScheduler
from repro.searchengine.facets import compute_facets
from repro.searchengine.logs import ClickEvent, QueryEvent, QueryLog
from repro.util import SimClock

from tests.conftest import make_inventory_csv

DAY_MS = 86_400_000


class TestFacets:
    def test_counts_over_full_candidate_set(self, engine, small_web):
        facets = engine.facets("web", "game", ("site",))
        site_facet = facets["site"]
        total = sum(fc.count for fc in site_facet.counts)
        response = engine.search("web", "game")
        assert total == response.total_matches
        assert total > len(response.results)  # beyond the first page

    def test_descending_order_with_tiebreak(self, engine):
        facets = engine.facets("web", "game", ("site",))
        counts = [fc.count for fc in facets["site"].counts]
        assert counts == sorted(counts, reverse=True)

    def test_topic_facet(self, engine):
        facets = engine.facets("web", "game OR wine", ("topic",))
        topics = facets["topic"].as_dict()
        assert "video_games" in topics and "wine" in topics

    def test_missing_field_buckets_none(self, engine):
        facets = engine.facets("web", "game", ("no_such_field",))
        assert facets["no_such_field"].as_dict() == {
            "(none)": sum(
                fc.count for fc in facets["no_such_field"].counts
            )
        }

    def test_no_fields_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.facets("web", "game", ())

    def test_top_helper(self, engine):
        facets = engine.facets("web", "game", ("site",))
        assert len(facets["site"].top(2)) == 2

    def test_direct_compute_facets(self, engine):
        vindex = engine.vertical("web")
        facets = compute_facets(vindex.index, vindex.text_fields,
                                "game", ("site",))
        assert facets["site"].counts


class TestPreview:
    @pytest.fixture()
    def session_ctx(self, symphony, designer_account):
        sym = symphony
        games = sym.web.entities["video_games"][:4]
        sym.upload_http(designer_account, "inv.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory", ("title",))
        session = sym.designer().new_application(
            "Preview", designer_account.tenant.tenant_id)
        return sym, session, inventory, games

    def test_preview_renders_without_hosting(self, session_ctx):
        sym, session, inventory, games = session_ctx
        slot = session.drag_source_onto_app(inventory.source_id,
                                            search_fields=("title",))
        session.add_text(slot, "title")
        result = sym.preview(session, games[0])
        assert result.ok
        assert games[0] in result.html
        assert sym.apps.ids() == []  # nothing hosted

    def test_preview_does_not_log_usage(self, session_ctx):
        sym, session, inventory, games = session_ctx
        slot = session.drag_source_onto_app(inventory.source_id,
                                            search_fields=("title",))
        session.add_text(slot, "title")
        before = len(sym.engine.log.queries)
        sym.preview(session, games[0])
        # Proprietary source queries don't touch the engine; the app-
        # level log is also untouched because preview passes log=None.
        app_events = [q for q in sym.engine.log.queries[before:]
                      if q.vertical == "app"]
        assert app_events == []

    def test_preview_carries_warnings(self, session_ctx):
        sym, session, inventory, games = session_ctx
        session.drag_source_onto_app(inventory.source_id,
                                     search_fields=("title",))
        result = sym.preview(session, games[0])  # no layout elements
        assert any("no elements" in i.message for i in result.issues)

    def test_preview_of_broken_design_raises(self, session_ctx):
        sym, session, *_ = session_ctx
        with pytest.raises(ConfigurationError):
            sym.preview(session, "anything")  # empty canvas

    def test_repeated_previews_get_fresh_ids(self, session_ctx):
        sym, session, inventory, games = session_ctx
        slot = session.drag_source_onto_app(inventory.source_id,
                                            search_fields=("title",))
        session.add_text(slot, "title")
        first = sym.preview(session, games[0])
        second = sym.preview(session, games[1])
        assert first.query_text != second.query_text


class TestRefreshScheduler:
    class FakeReport:
        def __init__(self, inserted=1, unchanged=False):
            self.inserted = inserted
            self.updated = 0
            self.unchanged = unchanged

    def test_first_run_is_due_immediately(self):
        clock = SimClock(start_ms=0)
        scheduler = RefreshScheduler(clock)
        runs = []
        scheduler.register("feed", 1000,
                           lambda: runs.append(1) or self.FakeReport())
        assert scheduler.due_feeds() == ["feed"]
        outcomes = scheduler.run_due()
        assert outcomes[0].inserted == 1
        assert runs == [1]

    def test_not_due_until_interval_elapses(self):
        clock = SimClock(start_ms=0)
        scheduler = RefreshScheduler(clock)
        scheduler.register("feed", 1000, self.FakeReport)
        scheduler.run_due()
        clock.advance(500)
        assert scheduler.due_feeds() == []
        clock.advance(500)
        assert scheduler.due_feeds() == ["feed"]

    def test_failure_isolated_and_counted(self):
        clock = SimClock(start_ms=0)
        scheduler = RefreshScheduler(clock)

        def boom():
            raise IngestError("feed gone")

        scheduler.register("bad", 100, boom)
        scheduler.register("good", 100, self.FakeReport)
        outcomes = {o.feed_id: o for o in scheduler.run_due()}
        assert outcomes["bad"].error == "feed gone"
        assert outcomes["good"].inserted == 1

    def test_any_exception_isolated_not_just_repro_errors(self):
        # A feed action raising KeyError (a bug, not an IngestError)
        # must not abort the scheduler pass.
        clock = SimClock(start_ms=0)
        scheduler = RefreshScheduler(clock)

        def buggy():
            raise KeyError("missing column")

        scheduler.register("buggy", 100, buggy)
        scheduler.register("good", 100, self.FakeReport)
        outcomes = {o.feed_id: o for o in scheduler.run_due()}
        assert "missing column" in outcomes["buggy"].error
        assert outcomes["good"].inserted == 1

    def test_failure_streak_resets_on_success(self):
        clock = SimClock(start_ms=0)
        scheduler = RefreshScheduler(clock)
        flaky = {"fail": True}

        def action():
            if flaky["fail"]:
                raise IngestError("down")
            return self.FakeReport()

        scheduler.register("feed", 100, action)
        scheduler.run_due()
        clock.advance(100)
        scheduler.run_due()
        assert scheduler._feeds["feed"].failures == 2
        flaky["fail"] = False
        clock.advance(100)
        scheduler.run_due()
        assert scheduler._feeds["feed"].failures == 0

    def test_refresh_events_emitted(self):
        from repro.telemetry import Telemetry

        clock = SimClock(start_ms=0)
        telemetry = Telemetry(clock)
        scheduler = RefreshScheduler(clock, telemetry=telemetry)

        def boom():
            raise IngestError("gone")

        scheduler.register("ok", 100, self.FakeReport)
        scheduler.register("bad", 100, boom)
        scheduler.run_due()
        complete = telemetry.events.by_kind("refresh.complete")
        failed = telemetry.events.by_kind("refresh.failed")
        assert [e.fields["feed"] for e in complete] == ["ok"]
        assert [e.fields["feed"] for e in failed] == ["bad"]
        assert failed[0].fields["failures"] == 1

    def test_duplicate_and_missing_registration(self):
        scheduler = RefreshScheduler(SimClock())
        scheduler.register("f", 100, self.FakeReport)
        with pytest.raises(DuplicateError):
            scheduler.register("f", 100, self.FakeReport)
        with pytest.raises(NotFoundError):
            scheduler.unregister("ghost")
        with pytest.raises(ValueError):
            scheduler.register("g", 0, self.FakeReport)

    def test_run_all_for_ticks_through_duration(self):
        clock = SimClock(start_ms=0)
        scheduler = RefreshScheduler(clock)
        runs = []
        scheduler.register(
            "feed", 1000,
            lambda: runs.append(clock.now_ms) or self.FakeReport(),
        )
        scheduler.run_all_for(3500)
        assert len(runs) == 3  # at 1000, 2000, 3000 (tick=interval)

    def test_end_to_end_rss_refresh(self, symphony, designer_account):
        sym = symphony
        domain = next(iter(sym.web.sites))
        scheduler = RefreshScheduler(sym.clock)
        scheduler.register(
            "news", 60_000,
            lambda: sym.ingest_rss_feed(
                designer_account, domain, "feed_items",
                key_field="link", indexed_fields=("link",),
            ),
        )
        first = scheduler.run_due()
        assert first[0].inserted > 0
        sym.clock.advance(60_000)
        second = scheduler.run_due()
        # The feed content is unchanged, so the blob-hash short-circuit
        # reports it as such.
        assert second[0].unchanged


class TestTrends:
    def make_log(self, now_ms):
        log = QueryLog()

        def add(query, days_ago, times=1):
            for __ in range(times):
                log.log_query(QueryEvent(
                    timestamp_ms=now_ms - days_ago * DAY_MS,
                    query=query, vertical="app", app_id="app-1",
                ))

        add("halo", days_ago=10, times=5)     # previous window
        add("halo", days_ago=2, times=5)      # stable
        add("zelda", days_ago=2, times=6)     # new + hot
        add("braid", days_ago=9, times=4)     # fading
        log.log_click(ClickEvent(
            timestamp_ms=now_ms - 2 * DAY_MS, query="halo",
            url="http://x.example/1", app_id="app-1",
        ))
        return log

    def test_daily_volumes(self):
        now = 100 * DAY_MS
        report = compute_trends(self.make_log(now), "app-1", now)
        by_day = {d.day: d for d in report.daily}
        assert by_day[98].queries == 11
        assert by_day[98].clicks == 1
        assert by_day[90].queries == 5

    def test_rising_query_ranking(self):
        now = 100 * DAY_MS
        report = compute_trends(self.make_log(now), "app-1", now,
                                window_days=7)
        ranked = [r.query for r in report.rising]
        assert ranked[0] == "zelda"          # 6 vs 0 — hottest
        assert "braid" not in ranked         # no recent occurrences
        zelda = report.rising[0]
        assert zelda.previous_count == 0
        assert zelda.score == pytest.approx((6 + 1) / 1)

    def test_stable_query_scores_near_one(self):
        now = 100 * DAY_MS
        report = compute_trends(self.make_log(now), "app-1", now)
        halo = next(r for r in report.rising if r.query == "halo")
        assert halo.score == pytest.approx(1.0)

    def test_busiest_day(self):
        now = 100 * DAY_MS
        report = compute_trends(self.make_log(now), "app-1", now)
        assert report.busiest_day().day == 98

    def test_empty_app(self):
        report = compute_trends(QueryLog(), "nothing", now_ms=0)
        assert report.daily == () and report.rising == ()
        assert report.busiest_day() is None
