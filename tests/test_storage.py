"""Tests for the storage substrate: records, schema inference, blobs,
tokens, tenants, quotas."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    AuthorizationError,
    DuplicateError,
    NotFoundError,
    QuotaExceededError,
    ValidationError,
    VersionConflictError,
)
from repro.storage.blobs import BlobStore
from repro.storage.records import (
    FieldSpec,
    FieldType,
    RecordTable,
    Schema,
    infer_schema,
)
from repro.storage.tenant import Quota, StorageCatalog, Tenant
from repro.storage.tokens import Scope, TokenAuthority


def game_schema():
    return Schema((
        FieldSpec("title", FieldType.STRING, required=True),
        FieldSpec("price", FieldType.FLOAT),
        FieldSpec("stock", FieldType.INTEGER),
        FieldSpec("released", FieldType.DATE),
        FieldSpec("active", FieldType.BOOLEAN),
        FieldSpec("homepage", FieldType.URL),
    ))


class TestCoercion:
    def test_string_passthrough(self):
        assert FieldSpec("t", FieldType.STRING).coerce(42) == "42"

    def test_integer(self):
        assert FieldSpec("n", FieldType.INTEGER).coerce(" 7 ") == 7

    def test_float(self):
        assert FieldSpec("p", FieldType.FLOAT).coerce("49.99") == 49.99

    def test_boolean_variants(self):
        spec = FieldSpec("b", FieldType.BOOLEAN)
        assert spec.coerce("yes") is True
        assert spec.coerce("FALSE") is False
        assert spec.coerce(True) is True

    def test_date_format_enforced(self):
        spec = FieldSpec("d", FieldType.DATE)
        assert spec.coerce("2010-03-01") == "2010-03-01"
        with pytest.raises(ValidationError):
            spec.coerce("03/01/2010")

    def test_url_format_enforced(self):
        spec = FieldSpec("u", FieldType.URL)
        assert spec.coerce("http://a.example/x") == "http://a.example/x"
        with pytest.raises(ValidationError):
            spec.coerce("not-a-url")

    def test_required_missing(self):
        with pytest.raises(ValidationError):
            FieldSpec("t", FieldType.STRING, required=True).coerce("")

    def test_optional_missing_is_none(self):
        assert FieldSpec("t", FieldType.STRING).coerce(None) is None

    def test_bad_integer(self):
        with pytest.raises(ValidationError):
            FieldSpec("n", FieldType.INTEGER).coerce("abc")


class TestSchema:
    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValidationError):
            Schema((FieldSpec("a", FieldType.STRING),
                    FieldSpec("a", FieldType.INTEGER)))

    def test_unknown_row_fields_rejected(self):
        with pytest.raises(ValidationError):
            game_schema().coerce_row({"title": "x", "mystery": 1})

    def test_roundtrip_dict(self):
        schema = game_schema()
        assert Schema.from_dict(schema.to_dict()) == schema

    def test_spec_lookup(self):
        assert game_schema().spec("price").type == FieldType.FLOAT
        with pytest.raises(NotFoundError):
            game_schema().spec("nope")


class TestInference:
    def test_basic_types(self):
        rows = [
            {"title": "Halo", "price": "49.99", "stock": "3",
             "active": "true", "released": "2009-11-03",
             "homepage": "http://halo.example"},
        ]
        schema = infer_schema(rows)
        types = {f.name: f.type for f in schema.fields}
        assert types == {
            "title": FieldType.STRING,
            "price": FieldType.FLOAT,
            "stock": FieldType.INTEGER,
            "active": FieldType.BOOLEAN,
            "released": FieldType.DATE,
            "homepage": FieldType.URL,
        }

    def test_int_widens_to_float(self):
        schema = infer_schema([{"v": "1"}, {"v": "2.5"}])
        assert schema.spec("v").type == FieldType.FLOAT

    def test_conflict_falls_back_to_string(self):
        schema = infer_schema([{"v": "1"}, {"v": "hello"}])
        assert schema.spec("v").type == FieldType.STRING

    def test_long_values_become_text(self):
        schema = infer_schema([{"v": "word " * 30}])
        assert schema.spec("v").type == FieldType.TEXT

    def test_missing_values_ignored(self):
        schema = infer_schema([{"v": ""}, {"v": "7"}])
        assert schema.spec("v").type == FieldType.INTEGER

    def test_all_missing_defaults_string(self):
        schema = infer_schema([{"v": ""}])
        assert schema.spec("v").type == FieldType.STRING

    def test_zero_rows_rejected(self):
        with pytest.raises(ValidationError):
            infer_schema([])

    def test_field_order_preserved(self):
        schema = infer_schema([{"b": "1", "a": "2"}])
        assert schema.field_names() == ["b", "a"]

    @given(st.lists(
        st.fixed_dictionaries({
            "n": st.integers(-1000, 1000).map(str),
            "f": st.floats(allow_nan=False, allow_infinity=False,
                           width=32).map(lambda v: f"{v:.3f}"),
        }),
        min_size=1, max_size=20,
    ))
    def test_inferred_schema_coerces_its_own_rows(self, rows):
        schema = infer_schema(rows)
        for row in rows:
            coerced = schema.coerce_row(row)
            assert isinstance(coerced["n"], int)
            assert isinstance(coerced["f"], float)


class TestRecordTable:
    def make(self, indexed=("title",)):
        return RecordTable("games", game_schema(), indexed)

    def row(self, title="Halo", **extra):
        base = {"title": title, "price": "49.99", "stock": "3",
                "released": "2009-11-03", "active": "true",
                "homepage": "http://halo.example"}
        base.update(extra)
        return base

    def test_insert_assigns_ids_and_version(self):
        table = self.make()
        record = table.insert(self.row())
        assert record.record_id == "games:1"
        assert record.version == 1
        assert record.values["price"] == 49.99

    def test_insert_duplicate_id(self):
        table = self.make()
        table.insert(self.row(), record_id="r1")
        with pytest.raises(DuplicateError):
            table.insert(self.row(), record_id="r1")

    def test_get_missing(self):
        with pytest.raises(NotFoundError):
            self.make().get("nope")

    def test_update_bumps_version(self):
        table = self.make()
        record = table.insert(self.row())
        updated = table.update(record.record_id, {"price": "39.99"})
        assert updated.version == 2
        assert updated.values["price"] == 39.99

    def test_optimistic_conflict(self):
        table = self.make()
        record = table.insert(self.row())
        table.update(record.record_id, {"price": "10"})
        with pytest.raises(VersionConflictError):
            table.update(record.record_id, {"price": "20"},
                         expected_version=1)

    def test_delete_removes_from_index(self):
        table = self.make()
        record = table.insert(self.row())
        table.delete(record.record_id)
        assert table.find("title", "Halo") == []
        assert len(table) == 0

    def test_find_via_index_case_insensitive(self):
        table = self.make()
        table.insert(self.row(title="Halo Odyssey"))
        assert len(table.find("title", "halo odyssey")) == 1

    def test_find_unindexed_field_scans(self):
        table = self.make()
        table.insert(self.row())
        assert len(table.find("stock", 3)) == 1

    def test_index_updates_on_update(self):
        table = self.make()
        record = table.insert(self.row(title="Old"))
        table.update(record.record_id, {"title": "New"})
        assert table.find("title", "Old") == []
        assert len(table.find("title", "New")) == 1

    def test_upsert_by(self):
        table = self.make()
        table.insert(self.row(title="Halo"))
        table.upsert_by("title", self.row(title="Halo", price="9.99"))
        table.upsert_by("title", self.row(title="Zelda"))
        assert len(table) == 2
        assert table.find("title", "Halo")[0].values["price"] == 9.99

    def test_upsert_by_ambiguous(self):
        schema = Schema((FieldSpec("k", FieldType.STRING),))
        table = RecordTable("t", schema, ("k",))
        table.insert({"k": "same"})
        table.insert({"k": "same"})
        with pytest.raises(DuplicateError):
            table.upsert_by("k", {"k": "same"})

    def test_scan_with_predicate_and_limit(self):
        table = self.make()
        for i in range(5):
            table.insert(self.row(title=f"Game {i}", stock=str(i)))
        cheap = table.scan(lambda r: r.values["stock"] >= 2, limit=2)
        assert len(cheap) == 2

    def test_json_roundtrip(self):
        table = self.make()
        table.insert(self.row())
        table.insert(self.row(title="Zelda"))
        restored = RecordTable.from_json(table.to_json())
        assert len(restored) == 2
        assert len(restored.find("title", "Zelda")) == 1
        new_record = restored.insert(self.row(title="Third"))
        assert new_record.record_id == "games:3"  # serial preserved

    def test_index_on_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            RecordTable("t", game_schema(), ("nope",))


class TestBlobStore:
    def test_put_get(self):
        store = BlobStore()
        store.put("k", b"data", "text/plain", created_ms=5)
        blob = store.get("k")
        assert blob.data == b"data"
        assert blob.size == 4

    def test_missing(self):
        with pytest.raises(NotFoundError):
            BlobStore().get("nope")

    def test_unchanged_detection(self):
        store = BlobStore()
        store.put("k", b"same")
        assert store.unchanged("k", b"same")
        assert not store.unchanged("k", b"different")
        assert not store.unchanged("other", b"same")

    def test_total_bytes_and_delete(self):
        store = BlobStore()
        store.put("a", b"12345")
        store.put("b", b"123")
        assert store.total_bytes() == 8
        store.delete("a")
        assert store.total_bytes() == 3
        with pytest.raises(NotFoundError):
            store.delete("a")


class TestTokens:
    def test_mint_and_authorize(self):
        authority = TokenAuthority()
        token = authority.mint("tenant-1", scopes=(Scope.READ,))
        resolved = authority.authorize(token.value, "tenant-1", Scope.READ)
        assert resolved.tenant_id == "tenant-1"

    def test_wrong_tenant_rejected(self):
        authority = TokenAuthority()
        token = authority.mint("tenant-1")
        with pytest.raises(AuthorizationError):
            authority.authorize(token.value, "tenant-2", Scope.READ)

    def test_scope_escalation_rejected(self):
        authority = TokenAuthority()
        token = authority.mint("tenant-1", scopes=(Scope.READ,))
        with pytest.raises(AuthorizationError):
            authority.authorize(token.value, "tenant-1", Scope.WRITE)

    def test_admin_implies_all(self):
        authority = TokenAuthority()
        token = authority.mint("tenant-1", scopes=(Scope.ADMIN,))
        for scope in Scope:
            authority.authorize(token.value, "tenant-1", scope)

    def test_revocation(self):
        authority = TokenAuthority()
        token = authority.mint("tenant-1")
        authority.revoke(token.value)
        with pytest.raises(AuthorizationError):
            authority.resolve(token.value)


class TestTenantAndQuota:
    def test_table_lifecycle(self):
        tenant = Tenant("t1", "Ann")
        tenant.create_table("games", game_schema())
        assert tenant.has_table("games")
        assert tenant.table_names() == ["games"]
        tenant.drop_table("games")
        assert not tenant.has_table("games")

    def test_duplicate_table(self):
        tenant = Tenant("t1", "Ann")
        tenant.create_table("games", game_schema())
        with pytest.raises(DuplicateError):
            tenant.create_table("games", game_schema())

    def test_table_quota(self):
        tenant = Tenant("t1", "Ann", Quota(max_tables=1))
        tenant.create_table("a", game_schema())
        with pytest.raises(QuotaExceededError):
            tenant.create_table("b", game_schema())

    def test_record_quota(self):
        tenant = Tenant("t1", "Ann", Quota(max_records_per_table=2))
        tenant.create_table("g", game_schema())
        rows = [{"title": f"G{i}"} for i in range(3)]
        with pytest.raises(QuotaExceededError):
            tenant.insert_rows("g", rows)
        # Partial inserts up to quota are kept.
        assert len(tenant.table("g")) == 2

    def test_blob_quota(self):
        tenant = Tenant("t1", "Ann", Quota(max_blob_bytes=10))
        tenant.put_blob("a", b"12345", "text/plain")
        with pytest.raises(QuotaExceededError):
            tenant.put_blob("b", b"123456789", "text/plain")

    def test_catalog_isolation(self):
        catalog = StorageCatalog()
        ann = catalog.create_tenant("Ann")
        bea = catalog.create_tenant("Bea")
        ann_token = catalog.authority.mint(ann.tenant_id,
                                           scopes=(Scope.ADMIN,))
        # Ann's token cannot open Bea's space.
        with pytest.raises(AuthorizationError):
            catalog.open(ann_token.value, bea.tenant_id, Scope.READ)
        opened = catalog.open(ann_token.value, ann.tenant_id, Scope.WRITE)
        assert opened is ann

    def test_catalog_unknown_tenant(self):
        catalog = StorageCatalog()
        with pytest.raises(NotFoundError):
            catalog.tenant("tenant-999999")
