"""Tests for repro.contracts: declarations, enforcement, governance.

Covers the contract model (field constraints, normalization rules,
serialization), the enforcer (policy handling, the code-generated fast
path agreeing with the interpreted path, drift majority voting), the
quarantine/replay loop through the platform facade (including additive
schema evolution and the retype guard), freshness SLA wiring, and the
null path staying inert on an ungoverned platform.
"""

from __future__ import annotations

import pytest

from repro.contracts import (
    NULL_CONTRACTS,
    ContractEnforcer,
    DataContract,
    FieldContract,
    FreshnessSLA,
    normalize_value,
)
from repro.contracts.scenario import run_drifted_feed
from repro.core.platform import Symphony
from repro.errors import (
    ConfigurationError,
    ContractViolationError,
    ValidationError,
)
from repro.storage.records import FieldType
from repro.telemetry import Telemetry
from repro.util import SimClock


def products_contract(policy="quarantine", **overrides) -> DataContract:
    keys = dict(
        table="products",
        fields=(
            FieldContract("sku", FieldType.STRING, required=True,
                          normalize=("trim", "upper")),
            FieldContract("title", FieldType.STRING, required=True,
                          normalize=("collapse_ws",)),
            FieldContract("price", FieldType.FLOAT, min_value=0.0,
                          normalize=("strip_currency",)),
            FieldContract("platform", FieldType.STRING,
                          allowed=("PC", "Xbox", "PS3")),
        ),
        key_field="sku",
        policy=policy,
    )
    keys.update(overrides)
    return DataContract(**keys)


def clean_rows(n=4) -> list:
    return [
        {"sku": f" sku-{i} ", "title": f"Game  {i}",
         "price": f"${10 + i}.99", "platform": ("PC", "Xbox", "PS3")[i % 3]}
        for i in range(n)
    ]


class TestContractModel:
    def test_normalize_rules_chain(self):
        spec = FieldContract("name", normalize=("trim", "upper"))
        assert spec.normalized("  acme  ") == "ACME"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValidationError):
            FieldContract("name", normalize=("shout",))

    def test_unit_normalization(self):
        value = normalize_value("1.2 kg", ("trim",), {"kg": 1000, "g": 1})
        assert value == 1200

    def test_non_string_passes_through(self):
        assert normalize_value(7, ("upper",)) == 7
        assert normalize_value(None, ("upper",)) is None

    def test_contract_needs_fields(self):
        with pytest.raises(ValidationError):
            DataContract(table="t", fields=())

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValidationError):
            DataContract(table="t", fields=(
                FieldContract("a"), FieldContract("a")))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError):
            products_contract(policy="shrug")

    def test_key_field_must_be_declared(self):
        with pytest.raises(ValidationError):
            products_contract(key_field="upc")

    def test_canonical_key_normalizes(self):
        contract = products_contract()
        assert contract.canonical_key({"sku": "  abc-1 "}) == "ABC-1"

    def test_schema_mirrors_fields(self):
        schema = products_contract().schema()
        assert schema.field_names() == ["sku", "title", "price",
                                        "platform"]
        assert schema.spec("price").type is FieldType.FLOAT

    def test_roundtrip_serialization(self):
        contract = products_contract(freshness=FreshnessSLA(25_000))
        again = DataContract.from_dict(contract.to_dict())
        assert again == contract

    def test_freshness_sla_validation(self):
        with pytest.raises(ValidationError):
            FreshnessSLA(0)
        with pytest.raises(ValidationError):
            FreshnessSLA(1000, objective=1.5)


class TestEnforcer:
    def enforcer(self, **overrides) -> ContractEnforcer:
        return ContractEnforcer(products_contract(**overrides))

    def test_clean_batch_normalized_and_typed(self):
        result = self.enforcer().enforce(clean_rows())
        assert not result.violations
        first = result.rows[0]
        assert first == {"sku": "SKU-0", "title": "Game 0",
                         "price": 10.99, "platform": "PC"}
        assert isinstance(first["price"], float)

    def test_every_violation_rule_fires(self):
        rows = [
            {"sku": "", "title": "A", "price": "$1", "platform": "PC"},
            {"sku": "s1", "title": "B", "price": "free", "platform": "PC"},
            {"sku": "s2", "title": "C", "price": "-4", "platform": "PC"},
            {"sku": "s3", "title": "D", "price": "$1", "platform": "Wii"},
            {"sku": "s4", "title": "E", "price": "$1", "platform": "PC",
             "rating": 5},
        ]
        result = self.enforcer().enforce(rows)
        rules = {v.rule for v in result.violations}
        assert rules == {"required", "type", "range", "enum", "extra"}
        assert len(result.quarantined) == 5
        assert not result.rows

    def test_nullable_empty_value_loads_as_none(self):
        row = {"sku": "s", "title": "T", "price": "", "platform": "PC"}
        result = self.enforcer().enforce([row])
        assert not result.violations
        assert result.rows[0]["price"] is None

    def test_fast_path_agrees_with_interpreted_path(self):
        """The code-generated validator may only ever *accept* rows the
        interpreted checks would accept, with identical output."""
        enforcer = self.enforcer()
        assert enforcer._fast_row is not None
        samples = []
        for sku in (" a ", "", None, 7):
            for price in ("$5", "oops", -1, 3.5, None, True):
                for platform in ("PC", "pc", None):
                    samples.append({"sku": sku, "title": "t",
                                    "price": price,
                                    "platform": platform})
        accepted = 0
        for row in samples:
            try:
                fast = enforcer._fast_row(dict(row))
            except (TypeError, ValueError):
                fast = None
            clean, violations, _ = enforcer._check_row(
                0, row, coerce=False)
            if fast is not None:
                assert not violations, row
                assert fast == clean, row
                accepted += 1
        assert accepted > 0

    def test_coerce_policy_counts_safe_casts(self):
        rows = [{"sku": "s", "title": "T", "price": "1,299",
                 "platform": "pc"}]
        result = self.enforcer(policy="coerce").enforce(rows)
        assert not result.violations
        # "1,299" is fixed by strip_currency *normalization* (not a
        # cast); only the enum casefold counts as a coercion.
        assert result.rows[0]["price"] == 1299.0
        assert result.rows[0]["platform"] == "PC"
        assert result.coerced == 1

    def test_coerce_policy_casts_float_shaped_integers(self):
        contract = DataContract(table="stock", fields=(
            FieldContract("sku", FieldType.STRING, required=True),
            FieldContract("count", FieldType.INTEGER),
        ), policy="coerce")
        result = ContractEnforcer(contract).enforce(
            [{"sku": "a", "count": "49.0"},
             {"sku": "b", "count": "49.5"}])
        assert result.rows[0]["count"] == 49
        assert result.coerced == 1
        assert [v.rule for v in result.violations] == ["type"]

    def test_allow_extra_fields_drops_silently(self):
        rows = [{"sku": "s", "title": "T", "price": "$2",
                 "platform": "PC", "rating": 5}]
        result = self.enforcer(allow_extra_fields=True).enforce(rows)
        assert not result.violations
        assert not result.drift.drifted
        assert "rating" not in result.rows[0]


class TestDriftDetection:
    def detect(self, rows, **overrides):
        return ContractEnforcer(
            products_contract(**overrides)).detect_drift(rows)

    def test_added_column(self):
        rows = [dict(r, rating="5") for r in clean_rows()]
        drift = self.detect(rows)
        assert drift.added == ("rating",)

    def test_missing_column(self):
        rows = [{"sku": "s", "title": "T"} for __ in range(3)]
        drift = self.detect(rows)
        assert "price" in drift.missing and "platform" in drift.missing

    def test_retype_needs_majority(self):
        rows = clean_rows(4)
        rows[0]["price"] = "call us"          # one typo: not drift
        assert not self.detect(rows).retyped
        for row in rows[:3]:                  # majority strings: drift
            row["price"] = "call us"
        retyped = self.detect(rows).retyped
        assert [name for name, __, __ in retyped] == ["price"]

    def test_normalization_applies_before_classification(self):
        # "$49.99" classifies as FLOAT once strip_currency runs, so a
        # currency-formatted feed is not retype drift.
        assert not self.detect(clean_rows()).drifted


class TestGovernedPlatform:
    @pytest.fixture()
    def governed(self):
        symphony = Symphony(contracts=True, telemetry=True)
        account = symphony.register_designer("Dana")
        return symphony, account

    def test_reject_policy_raises(self, governed):
        symphony, account = governed
        symphony.register_contract(
            account, products_contract(policy="reject"))
        bad = clean_rows() + [{"sku": "", "title": "x", "price": "$1",
                               "platform": "PC"}]
        with pytest.raises(ContractViolationError):
            symphony.upload_structured_data(account, bad,
                                            table_name="products")

    def test_quarantine_and_replay_idempotence(self, governed):
        symphony, account = governed
        symphony.register_contract(account, products_contract())
        rows = clean_rows() + [
            {"sku": "sku-bad", "title": "B", "price": "call us",
             "platform": "PC"},
        ]
        report = symphony.upload_structured_data(
            account, rows, table_name="products")
        tenant_id = account.tenant.tenant_id
        assert report.inserted == 4 and report.quarantined == 1
        assert len(symphony.contracts.quarantined_rows(
            tenant_id, "products")) == 1

        # Replay without fixing anything: the row re-quarantines
        # exactly once instead of duplicating or vanishing.
        replay = symphony.replay_quarantine(account, "products")
        assert replay.inserted == 0 and replay.quarantined == 1
        assert len(symphony.contracts.quarantined_rows(
            tenant_id, "products")) == 1

        # Relax the contract (price becomes STRING is a retype — not
        # allowed — so drop the constraint instead via a nullable
        # free-text note field and a fixed feed): here we simply fix
        # the row by replaying after the producer re-sends it clean.
        symphony.upload_structured_data(
            account,
            [{"sku": "sku-bad", "title": "B", "price": "$9.99",
              "platform": "PC"}],
            table_name="products")
        table = account.tenant.table("products")
        assert len(table) == 5

    def test_upsert_under_schema_drift(self, governed):
        """A refresh that adds a column (after a widened v2 contract)
        must upsert by canonical key, not duplicate rows."""
        symphony, account = governed
        symphony.register_contract(account, products_contract())
        symphony.upload_structured_data(
            account, clean_rows(), table_name="products")
        table = account.tenant.table("products")
        assert len(table) == 4

        v2 = products_contract(version=2, fields=(
            *products_contract().fields,
            FieldContract("rating", FieldType.FLOAT),
        ))
        symphony.register_contract(account, v2)
        drifted = [
            {"sku": " SKU-0 ", "title": "Game 0 (GOTY)",
             "price": "$49.99", "platform": "PC", "rating": "4.5"},
            {"sku": "sku-9", "title": "New Game", "price": "$59.99",
             "platform": "PS3", "rating": "3.0"},
        ]
        report = symphony.upload_structured_data(
            account, drifted, table_name="products")
        assert report.updated == 1 and report.inserted == 1
        assert len(table) == 5
        updated = table.find("sku", "SKU-0")[0]
        assert updated.values["rating"] == 4.5
        assert updated.values["title"] == "Game 0 (GOTY)"
        # Pre-evolution rows read None for the new column.
        old = table.find("sku", "SKU-1")[0]
        assert old.values.get("rating") is None

    def test_retype_guard_fails_upfront(self, governed):
        symphony, account = governed
        symphony.register_contract(account, products_contract())
        symphony.upload_structured_data(
            account, clean_rows(), table_name="products")
        retyped = products_contract(version=2, fields=(
            FieldContract("sku", FieldType.STRING, required=True),
            FieldContract("title", FieldType.STRING, required=True),
            FieldContract("price", FieldType.STRING),
            FieldContract("platform", FieldType.STRING),
        ))
        with pytest.raises(ConfigurationError):
            symphony.register_contract(account, retyped)

    def test_contract_events_and_metrics(self, governed):
        symphony, account = governed
        symphony.register_contract(account, products_contract())
        rows = clean_rows() + [dict(clean_rows()[0], sku="",
                                    rating="extra")]
        symphony.upload_structured_data(account, rows,
                                        table_name="products")
        events = symphony.telemetry.events
        assert events.by_kind("contract.drift")
        assert events.by_kind("contract.violation")

    def test_status_and_report(self, governed):
        symphony, account = governed
        symphony.register_contract(account, products_contract())
        symphony.upload_structured_data(
            account, clean_rows(), table_name="products")
        status = symphony.contract_status(account.tenant.tenant_id)
        assert status["tables"][0]["loaded"] == 4
        assert "products" in symphony.contract_report()


class TestFreshnessIntegration:
    def test_drifted_feed_scenario_end_to_end(self):
        symphony = Symphony(contracts=True, slo=True)
        report = run_drifted_feed(symphony)
        failed = [c for c in report.checks if not c.ok]
        assert report.ok, failed
        assert report.quarantined == 3
        assert report.replayed == 1 and report.requarantined == 2

    def test_stale_feed_flagged_and_recovered(self):
        clock = SimClock()
        from repro.contracts.manager import ContractManager
        manager = ContractManager(clock, telemetry=Telemetry(clock))
        manager.register("t1", products_contract(
            freshness=FreshnessSLA(5_000)))
        manager.mark_refreshed("t1", "products")
        clock.advance(4_000)
        assert manager.check_freshness() == []
        clock.advance(2_000)
        stale = manager.check_freshness()
        assert [(f.tenant_id, f.table) for f in stale] == \
            [("t1", "products")]
        assert manager.source_status("t1", "products")["stale"]
        # Recovery is edge-triggered on the next check() pass.
        manager.mark_refreshed("t1", "products")
        assert manager.check_freshness() == []
        assert not manager.is_stale("t1", "products")


class TestNullPath:
    def test_default_platform_is_ungoverned(self):
        symphony = Symphony()
        assert symphony.contracts is NULL_CONTRACTS
        assert not symphony.contracts.enabled

    def test_register_without_contracts_fails(self):
        symphony = Symphony()
        account = symphony.register_designer("Ann")
        with pytest.raises(ConfigurationError):
            symphony.register_contract(account, products_contract())

    def test_null_manager_is_inert(self):
        assert NULL_CONTRACTS.apply("t", "x", [{"a": 1}]) is None
        assert NULL_CONTRACTS.quarantined_rows("t", "x") == []
        assert NULL_CONTRACTS.check_freshness() == []
        assert "disabled" in NULL_CONTRACTS.report()

    def test_uncontracted_table_on_governed_platform(self):
        symphony = Symphony(contracts=True)
        account = symphony.register_designer("Ann")
        report = symphony.upload_structured_data(
            account, [{"a": "1"}, {"a": "2"}], table_name="plain")
        assert report.inserted == 2
        assert report.violations == 0
