"""Shared fixtures for the test suite.

Heavy objects (the synthetic web, a read-only engine) are session-scoped;
anything tests mutate (Symphony platforms, tenants) is function-scoped but
built on a deliberately small web spec so the whole suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.core.platform import Symphony
from repro.simweb.generator import WebGenerator, WebSpec
from repro.searchengine.engine import build_engine

SMALL_SPEC = WebSpec(
    seed=7,
    topics=("video_games", "wine", "news"),
    extra_sites_per_topic=1,
    pages_per_site=8,
    images_per_site=3,
    videos_per_site=2,
    news_per_site=4,
)

TINY_SPEC = WebSpec(
    seed=11,
    topics=("video_games",),
    extra_sites_per_topic=0,
    pages_per_site=5,
    images_per_site=2,
    videos_per_site=2,
    news_per_site=3,
)


@pytest.fixture(scope="session")
def small_web():
    """A moderate synthetic web shared read-only across the session."""
    return WebGenerator(SMALL_SPEC).build()


@pytest.fixture(scope="session")
def tiny_web():
    """A single-topic web for the cheapest platform tests."""
    return WebGenerator(TINY_SPEC).build()


@pytest.fixture(scope="session")
def engine(small_web):
    """A read-only engine over the small web. Tests must not mutate it."""
    return build_engine(small_web)


@pytest.fixture()
def symphony(tiny_web):
    """A fresh platform per test, on the tiny web (cheap to index)."""
    return Symphony(web=tiny_web, use_authority=False)


@pytest.fixture()
def symphony_small(small_web):
    """A fresh platform on the multi-topic small web."""
    return Symphony(web=small_web, use_authority=False)


@pytest.fixture()
def designer_account(symphony):
    return symphony.register_designer("Ann")


def make_inventory_csv(entities, with_urls: bool = True) -> bytes:
    """Build a game-store CSV over the given entity names."""
    if with_urls:
        header = "title,producer,description,image_url,detail_url"
        lines = [header]
        for i, name in enumerate(entities):
            lines.append(
                f'{name},Studio {i},"A classic {name} experience",'
                f"http://img.example/{i}.jpg,"
                f"http://gamerqueen.example/games/{i}"
            )
    else:
        lines = ["title,producer"]
        for i, name in enumerate(entities):
            lines.append(f"{name},Studio {i}")
    return "\n".join(lines).encode("utf-8")


@pytest.fixture()
def gamerqueen(symphony, designer_account):
    """The §II-B application, built through the designer API.

    Returns ``(symphony, app_id, games)``.
    """
    sym = symphony
    games = sym.web.entities["video_games"][:6]
    sym.upload_http(
        designer_account, "inventory.csv", make_inventory_csv(games),
        "inventory", content_type="text/csv",
    )
    inventory = sym.add_proprietary_source(
        designer_account, "inventory",
        search_fields=("title", "producer", "description"),
    )
    reviews = sym.add_web_source(
        "Game reviews", "web",
        sites=("gamespot.com", "ign.com", "teamxbox.com"),
    )
    designer = sym.designer()
    session = designer.new_application(
        "GamerQueen", designer_account.tenant.tenant_id
    )
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=4,
        search_fields=("title", "producer", "description"),
    )
    session.add_hyperlink(slot, "title", href_field="detail_url")
    session.add_image(slot, "image_url")
    session.add_text(slot, "description")
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        heading="Reviews", max_results=2, query_suffix="review",
    )
    app_id = sym.host(session)
    return sym, app_id, games
