"""Property test: clustered search is rank/score-identical to single node.

The two-phase statistics exchange exists so BM25 idf and length
normalisation on a shard use corpus-wide numbers. If that works, a
cluster of any shard count must return exactly the ranked doc_ids the
single-node engine returns, with scores equal to within float noise —
for every vertical, over several generated webs.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, build_clustered_engine
from repro.searchengine.engine import SearchOptions, build_engine
from repro.simweb.generator import WebGenerator, WebSpec

SEEDS = (2010, 7, 123)
SHARD_COUNTS = (1, 2, 4, 5)


def make_web(seed: int):
    return WebGenerator(WebSpec(
        seed=seed,
        topics=("video_games", "wine"),
        extra_sites_per_topic=1,
        pages_per_site=6,
        images_per_site=2,
        videos_per_site=2,
        news_per_site=3,
    )).build()


def sample_queries(web):
    """A mixed workload: entity terms, common words, a site filter."""
    games = web.entities["video_games"]
    queries = [
        games[0],
        games[1].split()[0],
        "wine tasting",
        "review",
        "no-such-term-anywhere",
    ]
    some_site = sorted(web.sites)[0]
    queries.append(f"site:{some_site} review")
    return queries


def align_clocks(single, cluster):
    """NEWS recency scoring reads now_ms; the engines' clocks drift
    (sum- vs max-over-shards latency), so step both to the later one
    before each compared query."""
    target = max(single.clock.now_ms, cluster.clock.now_ms)
    single.clock.advance(target - single.clock.now_ms)
    cluster.clock.advance(target - cluster.clock.now_ms)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_cluster_matches_single_node(seed, num_shards):
    web = make_web(seed)
    single = build_engine(web)
    cluster = build_clustered_engine(
        web, ClusterConfig(num_shards=num_shards,
                           replicas_per_shard=1),
    )
    try:
        options = SearchOptions(count=10)
        for vertical in ("web", "image", "video", "news"):
            for query in sample_queries(web):
                align_clocks(single, cluster)
                a = single.search(vertical, query, options)
                b = cluster.search(vertical, query, options)
                label = f"{vertical!r} {query!r} shards={num_shards}"
                assert b.urls() == a.urls(), label
                assert b.total_matches == a.total_matches, label
                assert b.suggestion == a.suggestion, label
                assert not b.degraded
                for ours, theirs in zip(b.results, a.results):
                    assert ours.score == pytest.approx(
                        theirs.score, abs=1e-9), label
    finally:
        cluster.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_facets_match_single_node(seed):
    web = make_web(seed)
    single = build_engine(web)
    cluster = build_clustered_engine(
        web, ClusterConfig(num_shards=4, replicas_per_shard=1),
    )
    try:
        align_clocks(single, cluster)
        assert cluster.facets("web", "wine", ("site", "topic")) == \
            single.facets("web", "wine", ("site", "topic"))
    finally:
        cluster.close()
