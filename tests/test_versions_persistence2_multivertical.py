"""Tests for application version history, marketplace persistence,
the autocomplete facade, and a multi-vertical application scenario."""

import pytest

from repro.core.persistence import export_platform, import_platform
from repro.core.platform import Symphony
from repro.errors import NotFoundError

from tests.conftest import make_inventory_csv


class TestVersionHistory:
    @pytest.fixture()
    def hosted(self, symphony, designer_account):
        sym = symphony
        games = sym.web.entities["video_games"][:3]
        sym.upload_http(designer_account, "inv.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory", ("title",))
        session = sym.designer().new_application(
            "Versioned", designer_account.tenant.tenant_id)
        slot = session.drag_source_onto_app(inventory.source_id,
                                            search_fields=("title",))
        session.add_text(slot, "title")
        app_id = sym.host(session)
        return sym, app_id, games

    def test_initial_version_is_one(self, hosted):
        sym, app_id, __ = hosted
        assert sym.apps.version(app_id) == 1
        assert sym.apps.history(app_id) == []

    def test_update_bumps_version_and_keeps_history(self, hosted):
        sym, app_id, __ = hosted
        session = sym.designer().edit_application(sym.apps.get(app_id))
        session.apply_template("midnight")
        sym.host(session)
        assert sym.apps.version(app_id) == 2
        history = sym.apps.history(app_id)
        assert len(history) == 1
        assert history[0].theme == "clean"

    def test_identical_reregistration_not_versioned(self, hosted):
        sym, app_id, __ = hosted
        sym.apps.register(sym.apps.get(app_id))  # no change
        assert sym.apps.version(app_id) == 1

    def test_rollback_restores_previous(self, hosted):
        sym, app_id, games = hosted
        session = sym.designer().edit_application(sym.apps.get(app_id))
        session.apply_template("midnight")
        sym.host(session)
        restored = sym.apps.rollback(app_id)
        assert restored.theme == "clean"
        assert sym.apps.version(app_id) == 1
        response = sym.query(app_id, games[0])
        assert "#101418" not in response.html  # midnight gone

    def test_rollback_without_history_rejected(self, hosted):
        sym, app_id, __ = hosted
        with pytest.raises(NotFoundError):
            sym.apps.rollback(app_id)

    def test_unregister_clears_history(self, hosted):
        sym, app_id, __ = hosted
        session = sym.designer().edit_application(sym.apps.get(app_id))
        session.apply_template("midnight")
        sym.host(session)
        sym.apps.unregister(app_id)
        with pytest.raises(NotFoundError):
            sym.apps.history(app_id)


class TestMarketplacePersistence:
    def test_ads_state_roundtrip(self, symphony, tiny_web):
        sym = symphony
        advertiser = sym.ads.create_advertiser("GameCo", 80.0)
        sym.ads.create_campaign(
            advertiser.advertiser_id, ["halo", "game"], 0.40,
            "GameCo", "http://g.example",
            match_type="phrase", negative_keywords=["free"],
        )
        ad = sym.ads.select_ads("halo game deals", "app-1")[0]
        sym.ads.record_click(ad.ad_id, now_ms=5)
        earnings = sym.ads.designer_earnings("app-1")
        assert earnings > 0

        restored = Symphony(web=tiny_web, use_authority=False)
        import_platform(restored, export_platform(sym))
        assert restored.ads.designer_earnings("app-1") == earnings
        advertiser_restored = restored.ads.advertiser(
            advertiser.advertiser_id)
        assert advertiser_restored.balance == pytest.approx(
            sym.ads.advertiser(advertiser.advertiser_id).balance)
        # Campaign behaviour (phrase match + negative) survives.
        again = restored.ads.select_ads("play halo game now", "app-2")
        assert again
        assert restored.ads.select_ads("free halo game", "app-2") == []

    def test_ledger_identity_preserved(self, symphony, tiny_web):
        sym = symphony
        advertiser = sym.ads.create_advertiser("A", 50.0)
        sym.ads.create_campaign(advertiser.advertiser_id, ["game"],
                                0.30, "H", "http://a.example")
        for i in range(4):
            for ad in sym.ads.select_ads("game", "app-1", now_ms=i):
                sym.ads.record_click(ad.ad_id, now_ms=i)
        restored = Symphony(web=tiny_web, use_authority=False)
        import_platform(restored, export_platform(sym))
        spend = restored.ads.advertiser_spend(advertiser.advertiser_id)
        assert spend == pytest.approx(
            restored.ads.designer_earnings("app-1")
            + restored.ads.platform_revenue(), abs=1e-6,
        )


class TestAutocompleteFacade:
    def test_completions_from_app_usage(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        symphony.query(app_id, games[0])
        symphony.query(app_id, games[0])
        symphony.query(app_id, games[1])
        prefix = games[0].split()[0][:3].lower()
        completions = symphony.autocomplete(prefix, app_id=app_id)
        assert completions
        assert completions[0].text == games[0].lower()

    def test_cache_invalidates_on_new_queries(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        symphony.query(app_id, games[0])
        first = symphony.autocomplete("z", app_id=app_id)
        symphony.query(app_id, "zzz special query")
        second = symphony.autocomplete("zzz", app_id=app_id)
        assert [c.text for c in second] == ["zzz special query"]
        assert first == []


class TestMultiVerticalScenario:
    """An application fanning out to image + video + news verticals."""

    @pytest.fixture()
    def media_app(self, symphony_small):
        sym = symphony_small
        account = sym.register_designer("Mia")
        games = sym.web.entities["video_games"][:4]
        sym.upload_http(account, "inv.csv", make_inventory_csv(games),
                        "inventory", content_type="text/csv")
        inventory = sym.add_proprietary_source(
            account, "inventory", ("title",))
        images = sym.add_web_source("Screenshots", "image")
        videos = sym.add_web_source("Trailers", "video")
        news = sym.add_web_source("News", "news")
        session = sym.designer().new_application(
            "MediaHub", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, max_results=2,
            search_fields=("title",))
        session.add_text(slot, "title")
        for source in (images, videos, news):
            session.drag_source_onto_result_layout(
                slot, source.source_id, drive_fields=("title",),
                heading=source.name, max_results=2)
        app_id = sym.host(session)
        return sym, app_id, games

    def test_all_three_verticals_answer(self, media_app):
        sym, app_id, games = media_app
        hits = {"image": 0, "video": 0, "news": 0}
        for game in games:
            response = sym.query(app_id, game)
            matching = [v for v in response.views
                        if v.item.get("title") == game]
            if not matching:
                continue
            view = matching[0]
            for result in view.supplemental.values():
                for item in result.items:
                    url = item.url
                    if "/img/" in url:
                        hits["image"] += 1
                    elif "/video/" in url:
                        hits["video"] += 1
                    elif "/news/" in url:
                        hits["news"] += 1
        # Every vertical contributes across the inventory.
        assert all(count > 0 for count in hits.values()), hits

    def test_image_items_carry_dimensions(self, media_app):
        sym, app_id, games = media_app
        for game in games:
            response = sym.query(app_id, game)
            for view in response.views:
                for result in view.supplemental.values():
                    for item in result.items:
                        if "/img/" in item.url:
                            assert int(item.fields["width"]) > 0
                            return
        pytest.fail("no image results found for any title")
