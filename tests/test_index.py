"""Tests for the positional inverted index."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DuplicateError, NotFoundError
from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument, FieldMode
from repro.searchengine.index import InvertedIndex


def make_index(**field_modes):
    return InvertedIndex(Analyzer(), field_modes=field_modes)


def doc(doc_id, **fields):
    return FieldedDocument(doc_id=doc_id, fields=fields)


class TestLifecycle:
    def test_add_and_len(self):
        index = make_index()
        index.add(doc("d1", title="hello world"))
        assert len(index) == 1
        assert "d1" in index

    def test_duplicate_add_rejected(self):
        index = make_index()
        index.add(doc("d1", title="x"))
        with pytest.raises(DuplicateError):
            index.add(doc("d1", title="y"))

    def test_upsert_replaces(self):
        index = make_index()
        index.add(doc("d1", title="alpha"))
        index.upsert(doc("d1", title="beta"))
        assert not index.postings("title", "alpha")
        assert "d1" in index.postings("title", "beta")

    def test_remove_clears_postings_and_lengths(self):
        index = make_index()
        index.add(doc("d1", title="gamma delta"))
        index.add(doc("d2", title="gamma"))
        index.remove("d1")
        assert "d1" not in index
        assert list(index.postings("title", "gamma")) == ["d2"]
        assert index.field_length("title", "d1") == 0
        assert index.average_field_length("title") == 1.0

    def test_remove_missing(self):
        with pytest.raises(NotFoundError):
            make_index().remove("nope")

    def test_document_roundtrip(self):
        index = make_index()
        original = doc("d1", title="x", body="y")
        index.add(original)
        assert index.document("d1") is original

    def test_none_fields_skipped(self):
        index = make_index()
        index.add(FieldedDocument("d1", {"title": None, "body": "real"}))
        assert index.vocabulary_size("title") == 0
        assert index.postings("body", "real")


class TestTextPostings:
    def test_positions_recorded(self):
        index = make_index()
        index.add(doc("d1", body="alpha beta alpha"))
        posting = index.postings("body", "alpha")["d1"]
        assert posting.positions == (0, 2)
        assert posting.term_frequency == 2

    def test_analysis_applied(self):
        index = make_index()
        index.add(doc("d1", body="The Reviews"))
        assert "d1" in index.postings("body", "review")
        assert not index.postings("body", "the")

    def test_document_frequency(self):
        index = make_index()
        index.add(doc("d1", body="common word"))
        index.add(doc("d2", body="common other"))
        assert index.document_frequency("body", "common") == 2
        assert index.document_frequency("body", "word") == 1

    def test_average_field_length(self):
        index = make_index()
        index.add(doc("d1", body="one two three"))
        index.add(doc("d2", body="one"))
        assert index.average_field_length("body") == 2.0

    def test_fields_listing(self):
        index = make_index(site=FieldMode.KEYWORD)
        index.add(doc("d1", title="x", site="a.example"))
        assert index.text_fields() == ["title"]
        assert index.keyword_fields() == ["site"]


class TestKeywordFields:
    def test_exact_match_case_insensitive(self):
        index = make_index(site=FieldMode.KEYWORD)
        index.add(doc("d1", site="GameSpot.com"))
        assert index.keyword_matches("site", "gamespot.com") == {"d1"}

    def test_no_tokenization(self):
        index = make_index(site=FieldMode.KEYWORD)
        index.add(doc("d1", site="gamespot.com"))
        assert index.keyword_matches("site", "gamespot") == set()

    def test_removed_from_keyword_index(self):
        index = make_index(site=FieldMode.KEYWORD)
        index.add(doc("d1", site="a.example"))
        index.remove("d1")
        assert index.keyword_matches("site", "a.example") == set()


class TestPhrases:
    def test_adjacent_phrase(self):
        index = make_index()
        index.add(doc("d1", body="combat evolved again"))
        index.add(doc("d2", body="evolved combat"))
        matched = index.phrase_matches(
            "body", index.analyzer.analyze("combat evolved")
        )
        assert matched == {"d1"}

    def test_phrase_tolerates_stopword_gap(self):
        index = make_index()
        index.add(doc("d1", body="lord of rings"))
        matched = index.phrase_matches(
            "body", index.analyzer.analyze("lord rings")
        )
        assert matched == {"d1"}

    def test_single_term_phrase(self):
        index = make_index()
        index.add(doc("d1", body="halo"))
        assert index.phrase_matches("body", ["halo"]) == {"d1"}

    def test_empty_terms(self):
        assert make_index().phrase_matches("body", []) == set()

    def test_missing_term_short_circuits(self):
        index = make_index()
        index.add(doc("d1", body="alpha beta"))
        assert index.phrase_matches("body", ["alpha", "zzz"]) == set()


class TestPropertyBased:
    @given(st.lists(
        st.tuples(
            st.text(alphabet="abcdefg", min_size=1, max_size=6),
            st.lists(st.sampled_from(
                ["halo", "game", "review", "wine", "travel", "combat"]
            ), min_size=1, max_size=8),
        ),
        min_size=1, max_size=12, unique_by=lambda pair: pair[0],
    ))
    def test_df_equals_docs_containing_term(self, entries):
        index = make_index()
        for doc_id, words in entries:
            index.add(doc(doc_id, body=" ".join(words)))
        analyzer = index.analyzer
        for term_source in ("halo", "game", "review"):
            term = analyzer.analyze(term_source)[0]
            expected = sum(
                1 for __, words in entries
                if term in analyzer.analyze(" ".join(words))
            )
            assert index.document_frequency("body", term) == expected

    @given(st.lists(
        st.sampled_from(["halo", "game", "review", "wine"]),
        min_size=1, max_size=10,
    ))
    def test_add_remove_restores_empty(self, words):
        index = make_index()
        index.add(doc("d1", body=" ".join(words)))
        index.remove("d1")
        assert len(index) == 0
        for word in words:
            term = index.analyzer.analyze(word)[0]
            assert index.document_frequency("body", term) == 0
        assert index.average_field_length("body") == 0.0
