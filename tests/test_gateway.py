"""repro.gateway — admission, fairness, coalescing, generational cache.

Covers the serving front door's four guarantees plus the stale-cache
regression: DRR fairness under a hot tenant, single-flight coalescing
(N waiters → 1 execution), shed-vs-degrade interplay with ``Deadline``,
and generation invalidation across ``DatasetIngestor`` + refresh.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.runtime import QueryRequest
from repro.errors import AdmissionRejectedError, ConfigurationError
from repro.gateway import (
    DeficitRoundRobinQueue,
    GatewayConfig,
    GenerationRegistry,
    QueryCache,
    TenantPolicy,
    TokenBucket,
    table_key,
)
from repro.gateway.coalesce import FlightEntry
from repro.util import SimClock

from .conftest import make_inventory_csv


# -- unit: token bucket --------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate_per_s=2.0, capacity=3.0)
        assert [bucket.try_acquire() for __ in range(4)] == \
            [True, True, True, False]
        clock.advance(500)          # 0.5 s -> one token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_capacity(self):
        clock = SimClock()
        bucket = TokenBucket(clock, rate_per_s=100.0, capacity=2.0)
        clock.advance(60_000)
        assert bucket.available() == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(SimClock(), rate_per_s=0, capacity=1)


# -- unit: deficit round-robin -------------------------------------------------

def _entry(principal, cost=1.0, tag=None):
    entry = FlightEntry(
        key=(principal, tag), principal=principal, request=None,
        deadline=None, context=None, enqueued_ms=0, cost=cost,
    )
    return entry


class TestDeficitRoundRobin:
    def test_round_robin_with_equal_weights(self):
        queue = DeficitRoundRobinQueue()
        for i in range(3):
            queue.push(_entry("a", tag=i))
        queue.push(_entry("b", tag=0))
        order = [queue.pop().principal for __ in range(4)]
        # b is served on the first rotation despite a's backlog.
        assert "b" in order[:2]
        assert order.count("a") == 3

    def test_weighted_service(self):
        weights = {"heavy": 2.0, "light": 1.0}
        queue = DeficitRoundRobinQueue(
            weight_of=lambda p: weights[p]
        )
        for i in range(8):
            queue.push(_entry("heavy", tag=i))
            queue.push(_entry("light", tag=i + 100))
        first_six = [queue.pop().principal for __ in range(6)]
        # Per round: heavy gets ~2 dispatches to light's 1.
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2

    def test_idle_principal_forfeits_deficit(self):
        queue = DeficitRoundRobinQueue()
        queue.push(_entry("a", tag=1))
        assert queue.pop().principal == "a"
        assert queue.pop() is None
        # Returning later starts from zero deficit, not banked credit.
        queue.push(_entry("a", cost=3.0, tag=2))
        queue.push(_entry("b", tag=3))
        # a's head costs 3: it takes three rotations of quantum 1.
        assert queue.pop().principal == "b"
        assert queue.pop().principal == "a"

    def test_depths(self):
        queue = DeficitRoundRobinQueue()
        queue.push(_entry("a", tag=1))
        queue.push(_entry("a", tag=2))
        assert queue.depth("a") == 2
        assert queue.depth("b") == 0
        assert len(queue) == 2
        assert queue.depths() == {"a": 2}


# -- unit: generation registry + query cache -----------------------------------

class TestGenerations:
    def test_bump_and_validity(self):
        registry = GenerationRegistry()
        key = table_key("t1", "inventory")
        stamp = registry.snapshot([key])
        assert registry.valid(stamp)
        registry.bump(key)
        assert not registry.valid(stamp)
        assert registry.current(key) == 1

    def test_listeners_fire_on_bump(self):
        registry = GenerationRegistry()
        seen = []
        registry.subscribe(lambda key, gen: seen.append((key, gen)))
        registry.bump("corpus")
        registry.bump("corpus")
        assert seen == [("corpus", 1), ("corpus", 2)]

    def test_query_cache_generation_invalidation(self):
        clock = SimClock()
        registry = GenerationRegistry()
        cache = QueryCache(registry, max_entries=4, ttl_ms=60_000)
        cache.put("k", "value", ["corpus"], clock.now_ms)
        assert cache.get("k", clock.now_ms) == "value"
        registry.bump("corpus")
        assert cache.get("k", clock.now_ms) is None
        assert cache.stats()["stale_invalidations"] == 1

    def test_query_cache_ttl(self):
        clock = SimClock()
        registry = GenerationRegistry()
        cache = QueryCache(registry, ttl_ms=1_000)
        cache.put("k", "value", [], clock.now_ms)
        clock.advance(1_001)
        assert cache.get("k", clock.now_ms) is None


# -- integration fixtures ------------------------------------------------------

def build_app(symphony, account, name: str, table: str,
              games) -> str:
    """Host one GamerQueen-style app over a private inventory table."""
    symphony.upload_http(
        account, f"{table}.csv", make_inventory_csv(games), table,
        content_type="text/csv",
    )
    inventory = symphony.add_proprietary_source(
        account, table,
        search_fields=("title", "producer", "description"),
    )
    session = symphony.designer().new_application(
        name, account.tenant.tenant_id
    )
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=3,
        search_fields=("title", "producer", "description"),
    )
    session.add_hyperlink(slot, "title", href_field="detail_url")
    return symphony.host(session)


@pytest.fixture()
def gateway_symphony(tiny_web):
    from repro.core.platform import Symphony
    return Symphony(web=tiny_web, use_authority=False,
                    gateway=GatewayConfig(workers=2))


@pytest.fixture()
def gateway_app(gateway_symphony):
    sym = gateway_symphony
    account = sym.register_designer("Ann")
    games = sym.web.entities["video_games"][:4]
    app_id = build_app(sym, account, "GamerQueen", "inventory", games)
    return sym, account, app_id, games


# -- integration: clean path ---------------------------------------------------

class TestCleanPath:
    def test_gateway_response_matches_direct_query(self, tiny_web):
        from repro.core.platform import Symphony
        direct = Symphony(web=tiny_web, use_authority=False)
        via = Symphony(web=tiny_web, use_authority=False, gateway=True)
        results = {}
        for name, sym in (("direct", direct), ("via", via)):
            account = sym.register_designer("Ann")
            games = sym.web.entities["video_games"][:4]
            app_id = build_app(sym, account, "GamerQueen",
                               "inventory", games)
            if name == "direct":
                results[name] = sym.query(app_id, games[0])
            else:
                results[name] = sym.query_via_gateway(app_id, games[0])
        assert results["direct"].html == results["via"].html
        assert results["direct"].app_id == results["via"].app_id

    def test_query_via_gateway_requires_opt_in(self, symphony):
        with pytest.raises(ConfigurationError):
            symphony.query_via_gateway("app-000001", "anything")

    def test_repeat_query_hits_response_cache(self, gateway_app):
        sym, __, app_id, games = gateway_app
        first = sym.query_via_gateway(app_id, games[0])
        again = sym.query_via_gateway(app_id, games[0])
        assert again.html == first.html
        stats = sym.gateway.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["dispatched"] == 1

    def test_cache_key_normalizes_query_text(self, gateway_app):
        sym, __, app_id, games = gateway_app
        sym.query_via_gateway(app_id, games[0])
        sym.query_via_gateway(app_id, f"  {games[0].upper()} ")
        assert sym.gateway.stats()["cache"]["hits"] == 1


# -- integration: fairness -----------------------------------------------------

class TestFairness:
    def test_hot_tenant_cannot_starve_the_rest(self, gateway_symphony):
        """4x overload from one tenant: everyone else keeps >= 80% of
        fair share (the ISSUE acceptance bar; DRR delivers 100%)."""
        sym = gateway_symphony
        games = sym.web.entities["video_games"][:4]
        app_ids = []
        for i in range(4):
            account = sym.register_designer(f"Designer {i}")
            app_ids.append(build_app(sym, account, f"App {i}",
                                     f"inventory_{i}", games))
        hot, cold = app_ids[0], app_ids[1:]
        capacity = 16
        fair_share = capacity // len(app_ids)
        # Hot tenant floods 4x its share; distinct queries so neither
        # the cache nor single-flight absorbs the pressure.
        for i in range(4 * fair_share):
            sym.gateway.submit(QueryRequest(
                app_id=hot, query_text=f"{games[i % 4]} copy {i}"
            ))
        for app_id in cold:
            for i in range(fair_share):
                sym.gateway.submit(QueryRequest(
                    app_id=app_id, query_text=f"{games[i]} v{i}"
                ))
        dispatched = sym.gateway.pump(max_dispatches=capacity)
        assert dispatched == capacity
        completed = sym.gateway.stats()["completed"]
        for app_id in cold:
            assert completed.get(app_id, 0) >= 0.8 * fair_share
        # ... and the hot tenant got its share, not the whole box.
        assert completed[hot] == fair_share

    def test_weighted_tenant_gets_proportional_share(self, tiny_web):
        from repro.core.platform import Symphony
        sym = Symphony(
            web=tiny_web, use_authority=False,
            gateway=GatewayConfig(policies={
                "app-000001": TenantPolicy(weight=2.0),
            }),
        )
        games = sym.web.entities["video_games"][:4]
        app_ids = []
        for i in range(2):
            account = sym.register_designer(f"Designer {i}")
            app_ids.append(build_app(sym, account, f"App {i}",
                                     f"inventory_{i}", games))
        for i in range(12):
            for app_id in app_ids:
                sym.gateway.submit(QueryRequest(
                    app_id=app_id, query_text=f"{games[i % 4]} q{i}"
                ))
        sym.gateway.pump(max_dispatches=9)
        completed = sym.gateway.stats()["completed"]
        assert completed["app-000001"] == 2 * completed["app-000002"]

    def test_queue_bound_sheds_flood(self, gateway_app):
        sym, __, app_id, games = gateway_app
        depth = sym.gateway.config.default_policy.max_queue_depth
        shed = 0
        for i in range(depth + 10):
            try:
                sym.gateway.submit(QueryRequest(
                    app_id=app_id, query_text=f"{games[0]} q{i}"
                ))
            except AdmissionRejectedError as exc:
                assert exc.reason == "queue_full"
                shed += 1
        assert shed == 10
        assert sym.gateway.stats()["shed"] == {"queue_full": 10}

    def test_token_bucket_throttles_per_app(self, tiny_web):
        from repro.core.platform import Symphony
        sym = Symphony(
            web=tiny_web, use_authority=False,
            gateway=GatewayConfig(default_policy=TenantPolicy(
                rate_per_s=1.0, burst=2.0,
            )),
        )
        account = sym.register_designer("Ann")
        games = sym.web.entities["video_games"][:4]
        app_id = build_app(sym, account, "GamerQueen", "inventory",
                           games)
        sym.gateway.submit(QueryRequest(app_id=app_id,
                                        query_text=games[0]))
        sym.gateway.submit(QueryRequest(app_id=app_id,
                                        query_text=games[1]))
        with pytest.raises(AdmissionRejectedError) as excinfo:
            sym.gateway.submit(QueryRequest(app_id=app_id,
                                            query_text=games[2]))
        assert excinfo.value.reason == "throttle"
        sym.clock.advance(1_000)       # one token refills
        sym.gateway.submit(QueryRequest(app_id=app_id,
                                        query_text=games[2]))


# -- integration: coalescing ---------------------------------------------------

class TestCoalescing:
    def test_n_waiters_one_execution(self, gateway_app):
        sym, __, app_id, games = gateway_app
        request = QueryRequest(app_id=app_id, query_text=games[0])
        tickets = [sym.gateway.submit(request) for __ in range(5)]
        sym.gateway.pump()
        stats = sym.gateway.stats()
        assert stats["dispatched"] == 1
        assert stats["coalesced"] == 4
        responses = [t.result() for t in tickets]
        assert all(r is responses[0] for r in responses)

    def test_coalesced_across_threads(self, gateway_app):
        """Concurrent query() callers on one key: a single dispatch
        serves every thread."""
        sym, __, app_id, games = gateway_app
        request = QueryRequest(app_id=app_id, query_text=games[1])
        barrier = threading.Barrier(4)
        results, errors = [], []

        def worker():
            barrier.wait()
            try:
                results.append(sym.gateway.query(request))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 4
        assert len({r.html for r in results}) == 1
        stats = sym.gateway.stats()
        # Every caller is accounted for: one (or, under unlucky
        # scheduling, a few) dispatches; the rest coalesced onto an
        # in-flight ticket or hit the cache after it resolved.
        assert stats["dispatched"] >= 1
        assert stats["dispatched"] + stats["coalesced"] \
            + stats["cache"]["hits"] == 4

    def test_distinct_pages_do_not_coalesce(self, gateway_app):
        sym, __, app_id, games = gateway_app
        sym.gateway.submit(QueryRequest(app_id=app_id,
                                        query_text=games[0], page=0))
        sym.gateway.submit(QueryRequest(app_id=app_id,
                                        query_text=games[0], page=1))
        sym.gateway.pump()
        assert sym.gateway.stats()["dispatched"] == 2
        assert sym.gateway.stats()["coalesced"] == 0


# -- integration: deadlines (shed vs degrade) ----------------------------------

class TestDeadlines:
    def test_projected_wait_sheds_before_queueing(self, gateway_app):
        sym, __, app_id, games = gateway_app
        # Build a deep backlog of undeadlined work.
        for i in range(20):
            sym.gateway.submit(QueryRequest(
                app_id=app_id, query_text=f"{games[i % 4]} q{i}"
            ))
        # Projected wait: 20 queued * 40ms est / 2 workers = 400ms,
        # far beyond a 50ms budget -> shed at the door.
        with pytest.raises(AdmissionRejectedError) as excinfo:
            sym.gateway.submit(QueryRequest(
                app_id=app_id, query_text="too late", deadline_ms=50,
            ))
        assert excinfo.value.reason == "deadline"
        assert sym.gateway.stats()["shed"]["deadline"] == 1

    def test_adequate_budget_executes_with_degradation_not_shed(
            self, gateway_app):
        """A request whose budget survives queueing runs the pipeline
        and degrades there if the remaining budget is tight — the
        shed-vs-degrade boundary."""
        sym, __, app_id, games = gateway_app
        # Queue is empty, so the 12ms budget clears the projected-wait
        # check — but it cannot cover the pipeline itself.
        ticket = sym.gateway.submit(QueryRequest(
            app_id=app_id, query_text=games[3], deadline_ms=12,
        ))
        sym.gateway.pump()
        response = ticket.result()     # not shed...
        assert response.degraded       # ...but degraded inside the pipeline
        assert any("deadline" in w for w in response.trace.warnings)

    def test_budget_lapsed_in_queue_is_shed_not_executed(
            self, gateway_app):
        sym, __, app_id, games = gateway_app
        # Admitted with a real budget (queue empty at submit time) ...
        ticket = sym.gateway.submit(QueryRequest(
            app_id=app_id, query_text=games[0], deadline_ms=100,
        ))
        # ... but the budget dies before anything dispatches it.
        sym.clock.advance(500)
        dispatched_before = sym.gateway.stats()["dispatched"]
        sym.gateway.pump()
        with pytest.raises(AdmissionRejectedError) as excinfo:
            ticket.result()
        assert excinfo.value.reason == "deadline_lapsed"
        # The pipeline never ran for it.
        assert sym.gateway.stats()["completed"] == {}
        assert sym.gateway.stats()["dispatched"] == dispatched_before + 1

    def test_queue_wait_charges_the_pipeline_budget(self, gateway_app):
        sym, __, app_id, games = gateway_app
        for i in range(2):
            sym.gateway.submit(QueryRequest(
                app_id=app_id, query_text=f"{games[i]} ahead {i}"
            ))
        ticket = sym.gateway.submit(QueryRequest(
            app_id=app_id, query_text=games[2], deadline_ms=5_000,
        ))
        submit_ms = sym.clock.now_ms
        sym.gateway.pump()
        waited = sym.clock.now_ms - submit_ms
        response = ticket.result()
        assert waited > 0
        assert not response.degraded


# -- integration: generational invalidation ------------------------------------

class TestGenerationInvalidation:
    def test_reingest_invalidates_gateway_cache(self, gateway_app):
        sym, account, app_id, games = gateway_app
        first = sym.query_via_gateway(app_id, games[0])
        assert first.views[0].item.get("producer") == "Studio 0"
        # Designer re-uploads the inventory with new producers.
        fresh = make_inventory_csv(games).replace(b"Studio",
                                                  b"Reissue")
        sym.upload_http(account, "inventory2.csv", fresh, "inventory",
                        content_type="text/csv", key_field="title")
        after = sym.query_via_gateway(app_id, games[0])
        assert after.views[0].item.get("producer") == "Reissue 0"
        assert sym.gateway.cache.stats()["stale_invalidations"] == 1

    def test_reingest_invalidates_runtime_result_cache(self, symphony):
        """Regression: ResultCache entries used to survive re-ingest
        for their whole TTL, serving rows the designer had replaced."""
        sym = symphony
        account = sym.register_designer("Ann")
        games = sym.web.entities["video_games"][:4]
        app_id = build_app(sym, account, "GamerQueen", "inventory",
                           games)
        first = sym.query(app_id, games[0])
        assert first.views[0].item.get("producer") == "Studio 0"
        cached = sym.query(app_id, games[0])
        assert cached.trace.cache_hits >= 1
        fresh = make_inventory_csv(games).replace(b"Studio",
                                                  b"Reissue")
        sym.upload_http(account, "inventory2.csv", fresh, "inventory",
                        content_type="text/csv", key_field="title")
        after = sym.query(app_id, games[0])
        assert after.trace.cache_hits == 0
        assert after.views[0].item.get("producer") == "Reissue 0"

    def test_unchanged_upload_does_not_bump(self, gateway_app):
        sym, account, app_id, games = gateway_app
        sym.query_via_gateway(app_id, games[0])
        generation_keys = sym.generations.keys()
        # Byte-identical re-upload short-circuits as unchanged.
        sym.upload_http(account, "inventory.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        assert sym.generations.keys() == generation_keys
        assert all(
            sym.generations.current(key) == 1 for key in generation_keys
        )
        sym.query_via_gateway(app_id, games[0])
        assert sym.gateway.cache.stats()["hits"] == 1

    def test_refresh_bumps_registered_generation_key(self):
        from repro.ingest.refresh import RefreshScheduler

        class Report:
            unchanged = False
            inserted = 2
            updated = 0

        clock = SimClock()
        registry = GenerationRegistry()
        scheduler = RefreshScheduler(clock, generations=registry)
        scheduler.register("feed-1", 1_000, lambda: Report(),
                           generation_key="tenant:t1:news")
        clock.advance(1_000)
        scheduler.run_due()
        assert registry.current("tenant:t1:news") == 1

    def test_republished_app_gets_fresh_cache_key(self, gateway_app):
        import dataclasses

        sym, account, app_id, games = gateway_app
        sym.query_via_gateway(app_id, games[0])
        # Redeploy the same app id with a revised definition; the
        # registry bumps its version to 2.
        current = sym.apps.get(app_id)
        sym.host(dataclasses.replace(current, name="GamerQueen v2"))
        assert sym.apps.version(app_id) == 2
        sym.query_via_gateway(app_id, games[0])
        # Version is part of the key: no cross-version hit.
        assert sym.gateway.cache.stats()["hits"] == 0


# -- integration: telemetry wiring ---------------------------------------------

class TestGatewayTelemetry:
    def test_shed_and_dispatch_emit_metrics_and_events(self, tiny_web):
        from repro.core.platform import Symphony
        sym = Symphony(
            web=tiny_web, use_authority=False, telemetry=True,
            gateway=GatewayConfig(default_policy=TenantPolicy(
                max_queue_depth=2,
            )),
        )
        account = sym.register_designer("Ann")
        games = sym.web.entities["video_games"][:4]
        app_id = build_app(sym, account, "GamerQueen", "inventory",
                           games)
        for i in range(4):
            try:
                sym.gateway.submit(QueryRequest(
                    app_id=app_id, query_text=f"{games[i]} t{i}"
                ))
            except AdmissionRejectedError:
                pass
        sym.gateway.pump()
        kinds = [e.kind for e in sym.telemetry.events.events]
        assert kinds.count("gateway.shed") == 2
        snapshot = sym.telemetry.metrics.snapshot()
        assert snapshot["counter"][
            "gateway_shed_total{reason=queue_full}"] == 2
        assert snapshot["counter"]["gateway_admitted_total"] == 2
        assert snapshot["histogram"]["gateway_queue_wait_ms"][
            "count"] == 2
        assert snapshot["gauge"]["gateway_queue_depth"] == 0

    def test_dispatch_nests_query_span_under_gateway(self, tiny_web):
        from repro.core.platform import Symphony
        sym = Symphony(web=tiny_web, use_authority=False,
                       telemetry=True, gateway=True)
        account = sym.register_designer("Ann")
        games = sym.web.entities["video_games"][:4]
        app_id = build_app(sym, account, "GamerQueen", "inventory",
                           games)
        sym.query_via_gateway(app_id, games[0])
        spans = sym.telemetry.tracer.spans
        gateway_spans = [s for s in spans if s.name == "gateway"]
        assert len(gateway_spans) == 1
        query_spans = [s for s in spans if s.name == "query"]
        assert query_spans[0].parent_id == gateway_spans[0].span_id


# -- backward compatibility ----------------------------------------------------

class TestPrimitivesExtraction:
    def test_runtime_re_exports_primitives(self):
        from repro.core import runtime
        from repro.gateway import primitives
        assert runtime.ResultCache is primitives.ResultCache
        assert runtime.CircuitBreaker is primitives.CircuitBreaker
        assert runtime.RateLimiter is primitives.RateLimiter

    def test_result_cache_invalidate_source(self):
        from repro.gateway.primitives import ResultCache
        cache = ResultCache()
        cache.put(("src-1", "halo", 3, 0), "a", 0)
        cache.put(("src-1", "myst", 3, 0), "b", 0)
        cache.put(("src-2", "halo", 3, 0), "c", 0)
        assert cache.invalidate_source("src-1") == 2
        assert cache.get(("src-2", "halo", 3, 0), 0) == "c"
        assert cache.stats()["invalidations"] == 2


class TestFederatedSourceInvalidation:
    """Regression: the gateway cache must stamp EVERY backend a
    federated source touches, so re-ingesting any one of them
    invalidates cached fused responses mid-TTL."""

    def test_reingest_of_one_backend_invalidates_cached_fusion(
            self, gateway_symphony):
        from repro.federation import SourceBackend
        sym = gateway_symphony
        account = sym.register_designer("Ann")
        games = sym.web.entities["video_games"][:4]
        sym.upload_http(account, "inventory.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        inventory = sym.add_proprietary_source(
            account, "inventory",
            search_fields=("title", "producer", "description"),
        )
        executor = sym.enable_federation()
        executor.registry.add(
            SourceBackend(inventory, backend_id="inventory")
        )
        fed = sym.add_federated_source(
            "meta search", backend_ids=("inventory", "local")
        )
        session = sym.designer().new_application(
            "Meta", account.tenant.tenant_id
        )
        slot = session.drag_source_onto_app(
            fed.source_id, heading="Everywhere", max_results=5
        )
        session.add_text(slot, "title")
        app_id = sym.host(session)

        # The cache key derivation sees through the federated source
        # to the tenant table it queries.
        keys = sym.gateway._generation_keys(app_id)
        assert any(key.endswith(":inventory") for key in keys)

        first = sym.query_via_gateway(app_id, games[0])
        again = sym.query_via_gateway(app_id, games[0])
        assert again.html == first.html
        assert sym.gateway.cache.stats()["hits"] == 1

        # Mid-TTL re-ingest of just ONE backend (the table) must
        # evict the cached fused response.
        fresh = make_inventory_csv(games).replace(b"Studio",
                                                  b"Reissue")
        sym.upload_http(account, "inventory2.csv", fresh, "inventory",
                        content_type="text/csv", key_field="title")
        sym.query_via_gateway(app_id, games[0])
        assert sym.gateway.cache.stats()["stale_invalidations"] == 1
        assert sym.gateway.stats()["dispatched"] == 2
