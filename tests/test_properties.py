"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import json

from hypothesis import given, settings, strategies as st

from repro.core.application import (
    ApplicationDefinition,
    ElementKind,
    LayoutElement,
    ResultLayout,
    SourceBinding,
    SourceRole,
    SourceSlot,
)
from repro.core.runtime import ResultCache
from repro.ingest.workbook import Workbook, Worksheet, dump_workbook, \
    parse_workbook
from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument
from repro.searchengine.index import InvertedIndex
from repro.searchengine.query import QueryEvaluator, parse_query
from repro.services.ads import AdService
from repro.storage.records import RecordTable, infer_schema
from repro.util import deterministic_rng

# -- strategies ----------------------------------------------------------------

_WORDS = ["halo", "zelda", "game", "review", "wine", "travel", "combat",
          "guide", "classic", "arcade"]

documents = st.lists(
    st.lists(st.sampled_from(_WORDS), min_size=1, max_size=10),
    min_size=1, max_size=15,
)

simple_queries = st.one_of(
    st.sampled_from(_WORDS),
    st.tuples(st.sampled_from(_WORDS),
              st.sampled_from(_WORDS)).map(lambda t: f"{t[0]} {t[1]}"),
    st.tuples(st.sampled_from(_WORDS),
              st.sampled_from(_WORDS)).map(
                  lambda t: f"{t[0]} OR {t[1]}"),
    st.sampled_from(_WORDS).map(lambda w: f"NOT {w}"),
    st.tuples(st.sampled_from(_WORDS), st.sampled_from(_WORDS)).map(
        lambda t: f'"{t[0]} {t[1]}"'),
)


def build_index(word_lists):
    index = InvertedIndex(Analyzer())
    for i, words in enumerate(word_lists):
        index.add(FieldedDocument(f"d{i}", {"body": " ".join(words)}))
    return index


# -- query algebra -------------------------------------------------------------

class TestQueryAlgebra:
    @given(documents, st.sampled_from(_WORDS), st.sampled_from(_WORDS))
    def test_or_commutative(self, docs, a, b):
        index = build_index(docs)
        evaluator = QueryEvaluator(index, ["body"])
        left = evaluator.candidates(parse_query(f"{a} OR {b}"))
        right = evaluator.candidates(parse_query(f"{b} OR {a}"))
        assert left == right

    @given(documents, st.sampled_from(_WORDS), st.sampled_from(_WORDS))
    def test_and_commutative(self, docs, a, b):
        index = build_index(docs)
        evaluator = QueryEvaluator(index, ["body"])
        left = evaluator.candidates(parse_query(f"{a} {b}"))
        right = evaluator.candidates(parse_query(f"{b} {a}"))
        assert left == right

    @given(documents, st.sampled_from(_WORDS))
    def test_idempotence(self, docs, word):
        index = build_index(docs)
        evaluator = QueryEvaluator(index, ["body"])
        single = evaluator.candidates(parse_query(word))
        assert evaluator.candidates(parse_query(f"{word} {word}")) == \
            single
        assert evaluator.candidates(
            parse_query(f"{word} OR {word}")) == single

    @given(documents, st.sampled_from(_WORDS))
    def test_excluded_middle(self, docs, word):
        index = build_index(docs)
        evaluator = QueryEvaluator(index, ["body"])
        positive = evaluator.candidates(parse_query(word))
        negative = evaluator.candidates(parse_query(f"NOT {word}"))
        assert positive | negative == index.all_doc_ids()
        assert positive & negative == set()

    @given(documents, simple_queries)
    def test_and_narrows_or_widens(self, docs, query):
        index = build_index(docs)
        evaluator = QueryEvaluator(index, ["body"])
        base = evaluator.candidates(parse_query(query))
        narrowed = evaluator.candidates(
            parse_query(f"({query}) halo"))
        widened = evaluator.candidates(
            parse_query(f"({query}) OR halo"))
        assert narrowed <= base <= widened

    @given(documents, st.sampled_from(_WORDS), st.sampled_from(_WORDS))
    def test_phrase_subset_of_conjunction(self, docs, a, b):
        index = build_index(docs)
        evaluator = QueryEvaluator(index, ["body"])
        phrase = evaluator.candidates(parse_query(f'"{a} {b}"'))
        conjunction = evaluator.candidates(parse_query(f"{a} {b}"))
        assert phrase <= conjunction


# -- serialization round-trips ------------------------------------------------------

app_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz -", min_size=1, max_size=20
).filter(str.strip)

styles = st.dictionaries(
    st.sampled_from(["color", "font-size", "margin"]),
    st.sampled_from(["red", "12px", "4px 0"]),
    max_size=3,
)

elements = st.builds(
    LayoutElement,
    kind=st.sampled_from(list(ElementKind)),
    bind_field=st.sampled_from(["title", "url", "description"]),
    href_field=st.sampled_from(["", "detail_url"]),
    style=styles,
    css_class=st.sampled_from(["", "headline"]),
)


@st.composite
def applications(draw):
    n_children = draw(st.integers(0, 2))
    bindings = [SourceBinding("b0", "s0", SourceRole.PRIMARY,
                              max_results=draw(st.integers(1, 9)))]
    children = []
    for i in range(n_children):
        binding_id = f"c{i}"
        bindings.append(SourceBinding(
            binding_id, f"s{i + 1}", SourceRole.SUPPLEMENTAL,
            drive_fields=("title",),
            query_suffix=draw(st.sampled_from(["", "review"])),
        ))
        children.append(SourceSlot(binding_id=binding_id))
    slots = (SourceSlot(
        binding_id="b0",
        heading=draw(app_names),
        result_layout=ResultLayout(tuple(draw(
            st.lists(elements, max_size=3)))),
        children=tuple(children),
        style=draw(styles),
    ),)
    return ApplicationDefinition(
        app_id="app-x", name=draw(app_names), owner_tenant="t1",
        bindings=tuple(bindings), slots=slots,
        theme=draw(st.sampled_from(["clean", "midnight",
                                    "storefront"])),
        settings=draw(st.dictionaries(
            st.sampled_from(["page_size", "locale"]),
            st.sampled_from([10, "en-us"]), max_size=2)),
    )


class TestRoundTrips:
    @given(applications())
    @settings(max_examples=50)
    def test_application_json_roundtrip(self, app):
        app.validate()
        payload = json.dumps(app.to_dict())
        restored = ApplicationDefinition.from_dict(json.loads(payload))
        assert restored == app

    @given(st.lists(
        st.tuples(st.sampled_from(_WORDS), st.integers(0, 999)),
        min_size=1, max_size=15,
    ))
    def test_workbook_roundtrip(self, rows):
        workbook = Workbook("wb", (Worksheet(
            "S1", ("name", "value"),
            tuple((name, value) for name, value in rows),
        ),))
        assert parse_workbook(dump_workbook(workbook)) == workbook

    @given(st.lists(
        st.fixed_dictionaries({
            "title": st.sampled_from(_WORDS),
            "price": st.floats(0, 100, allow_nan=False).map(
                lambda v: round(v, 2)),
            "stock": st.integers(0, 50),
        }),
        min_size=1, max_size=12,
    ))
    def test_table_json_roundtrip_preserves_queries(self, rows):
        schema = infer_schema(rows)
        table = RecordTable("t", schema, ("title",))
        for row in rows:
            table.insert(row)
        restored = RecordTable.from_json(table.to_json())
        assert len(restored) == len(table)
        for word in set(r["title"] for r in rows):
            assert len(restored.find("title", word)) == \
                len(table.find("title", word))


# -- cache and auction invariants ------------------------------------------------------

class TestCacheProperties:
    @given(st.lists(
        st.tuples(st.sampled_from("abcdef"), st.integers(0, 100)),
        min_size=1, max_size=40,
    ), st.integers(1, 5))
    def test_lru_never_exceeds_capacity(self, operations, capacity):
        cache = ResultCache(max_entries=capacity, ttl_ms=10_000)
        for key, now in operations:
            cache.put(key, key.upper(), now_ms=now)
            assert len(cache) <= capacity

    @given(st.sampled_from("abc"), st.integers(0, 100),
           st.integers(1, 200))
    def test_ttl_monotone(self, key, stored_at, age):
        cache = ResultCache(ttl_ms=100)
        cache.put(key, "value", now_ms=stored_at)
        result = cache.get(key, now_ms=stored_at + age)
        if age <= 100:
            assert result == "value"
        else:
            assert result is None


class TestAuctionProperties:
    @given(st.lists(
        st.tuples(
            st.floats(0.02, 2.0, allow_nan=False),
            st.floats(0.5, 1.5, allow_nan=False),
        ),
        min_size=1, max_size=8,
    ), st.integers(1, 4))
    @settings(max_examples=50)
    def test_gsp_prices_bounded_and_order_stable(self, campaigns,
                                                 count):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 10_000.0)
        for i, (bid, quality) in enumerate(campaigns):
            ads.create_campaign(
                advertiser.advertiser_id, ["game"], round(bid, 2),
                f"H{i}", f"http://a.example/{i}",
                quality=round(quality, 2),
            )
        selected = ads.select_ads("game", "app", count=count)
        assert len(selected) <= count
        for ad in selected:
            campaign = ads.campaign(ad.campaign_id)
            assert 0.01 <= ad.price_per_click <= max(
                campaign.bid_per_click, 0.01
            )
        # Ranking is by bid*quality descending.
        ranks = [ads.campaign(ad.campaign_id) for ad in selected]
        scores = [c.bid_per_click * c.quality for c in ranks]
        assert scores == sorted(scores, reverse=True)

    @given(st.integers(1, 30))
    @settings(max_examples=25)
    def test_ledger_identity_holds_for_any_click_count(self, clicks):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 10_000.0)
        ads.create_campaign(advertiser.advertiser_id, ["game"], 0.50,
                            "H", "http://a.example",
                            daily_budget=10_000.0)
        rng = deterministic_rng(("ledger", clicks))
        for i in range(clicks):
            for ad in ads.select_ads("game", "app", count=1,
                                     now_ms=i):
                if rng.random() < 0.7:
                    ads.record_click(ad.ad_id, now_ms=i)
        spend = ads.advertiser_spend(advertiser.advertiser_id)
        payout = ads.designer_earnings("app")
        assert abs(spend - (payout + ads.platform_revenue())) < 1e-6


# -- analyzer/stemmer properties ----------------------------------------------------

class TestAnalyzerProperties:
    @given(st.text(max_size=200))
    def test_analysis_is_deterministic(self, text):
        analyzer = Analyzer()
        assert analyzer.analyze(text) == analyzer.analyze(text)

    @given(st.text(max_size=100))
    def test_positions_strictly_increasing(self, text):
        analyzer = Analyzer()
        positions = [p for __, p in
                     analyzer.analyze_with_positions(text)]
        assert positions == sorted(positions)
        assert len(positions) == len(set(positions))

    @given(st.lists(st.sampled_from(_WORDS), max_size=20))
    def test_index_and_query_agree_on_analysis(self, words):
        """A doc must match a query made of its own (analyzed) words."""
        if not words:
            return
        index = InvertedIndex(Analyzer())
        index.add(FieldedDocument("d", {"body": " ".join(words)}))
        evaluator = QueryEvaluator(index, ["body"])
        for word in set(words):
            assert "d" in evaluator.candidates(parse_query(word))
