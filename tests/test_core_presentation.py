"""Tests for themes, stylesheets, and the HTML renderer."""

import pytest

from repro.core.application import (
    ApplicationDefinition,
    ElementKind,
    LayoutElement,
    ResultLayout,
    SourceBinding,
    SourceRole,
    SourceSlot,
)
from repro.core.datasources import SourceItem, SourceResult
from repro.core.presentation import (
    HtmlRenderer,
    PresentationWizard,
    StyleSheet,
    Theme,
    ThemeRegistry,
)
from repro.core.runtime import PrimaryResultView
from repro.errors import NotFoundError


def item(**overrides):
    base = dict(
        item_id="i1",
        title="Halo <Odyssey>",
        url="http://shop.example/halo?a=1&b=2",
        snippet="classic & modern",
        fields={"image_url": "http://img.example/1.jpg",
                "description": 'say "hi"'},
    )
    base.update(overrides)
    return SourceItem(**base)


def simple_app(elements, children=(), theme="clean",
               ads_binding=False):
    bindings = [SourceBinding("b1", "s1", SourceRole.PRIMARY)]
    slots = [SourceSlot(
        binding_id="b1", heading="Games",
        result_layout=ResultLayout(tuple(elements)),
        children=tuple(children),
    )]
    if children:
        bindings.append(SourceBinding(
            "b2", "s2", SourceRole.SUPPLEMENTAL, drive_fields=("title",)
        ))
    if ads_binding:
        bindings.append(SourceBinding("b3", "s3", SourceRole.ADS))
        slots.append(SourceSlot(binding_id="b3", heading="Sponsored"))
    return ApplicationDefinition(
        app_id="app-1", name="Test", owner_tenant="t1",
        bindings=tuple(bindings), slots=tuple(slots), theme=theme,
    )


class TestThemes:
    def test_builtins_available(self):
        registry = ThemeRegistry()
        assert {"clean", "midnight", "storefront"} <= set(
            registry.names()
        )

    def test_unknown_theme(self):
        with pytest.raises(NotFoundError):
            ThemeRegistry().get("sparkly")

    def test_register_custom(self):
        registry = ThemeRegistry()
        registry.register(Theme("brand", {"app": {"color": "red"}}))
        assert registry.get("brand").style_for("app") == {"color": "red"}

    def test_style_for_unknown_role_empty(self):
        assert ThemeRegistry().get("clean").style_for("nothing") == {}


class TestStyleSheet:
    def test_css_generation_sorted(self):
        sheet = StyleSheet()
        sheet.add_rule(".b", color="red")
        sheet.add_rule(".a", font_size="12px", color="blue")
        css = sheet.to_css()
        assert css.index(".a") < css.index(".b")
        assert "font-size: 12px" in css

    def test_rule_merging(self):
        sheet = StyleSheet()
        sheet.add_rule(".a", color="red")
        sheet.add_rule(".a", background="white")
        assert sheet.rules[".a"] == {"color": "red",
                                     "background": "white"}


class TestElementRendering:
    def setup_method(self):
        self.renderer = HtmlRenderer()

    def test_text_escapes_html(self):
        element = LayoutElement(ElementKind.TEXT, "title")
        html = self.renderer.render_element(element, item())
        assert "&lt;Odyssey&gt;" in html
        assert "<Odyssey>" not in html

    def test_image_src_escaped_and_alt_set(self):
        element = LayoutElement(ElementKind.IMAGE, "image_url")
        html = self.renderer.render_element(element, item())
        assert 'src="http://img.example/1.jpg"' in html
        assert 'alt="Halo &lt;Odyssey&gt;"' in html

    def test_image_empty_field_renders_nothing(self):
        element = LayoutElement(ElementKind.IMAGE, "missing_field")
        assert self.renderer.render_element(element, item()) == ""

    def test_hyperlink_default_href_is_item_url(self):
        element = LayoutElement(ElementKind.HYPERLINK, "title")
        html = self.renderer.render_element(element, item())
        assert 'href="http://shop.example/halo?a=1&amp;b=2"' in html

    def test_hyperlink_href_field_override(self):
        element = LayoutElement(ElementKind.HYPERLINK, "title",
                                href_field="image_url")
        html = self.renderer.render_element(element, item())
        assert 'href="http://img.example/1.jpg"' in html

    def test_hyperlink_without_href_degrades_to_span(self):
        element = LayoutElement(ElementKind.HYPERLINK, "title")
        html = self.renderer.render_element(element, item(url=""))
        assert html.startswith("<span")

    def test_inline_style_rendered(self):
        element = LayoutElement(ElementKind.TEXT, "title",
                                style={"color": "#444",
                                       "font-size": "12px"})
        html = self.renderer.render_element(element, item())
        assert 'style="color: #444; font-size: 12px"' in html

    def test_css_class_rendered(self):
        element = LayoutElement(ElementKind.TEXT, "title",
                                css_class="headline")
        assert 'class="headline"' in \
            self.renderer.render_element(element, item())


class TestAppRendering:
    def render(self, app, views, ads=(), stylesheet=None):
        return HtmlRenderer().render_app(app, views, ads, stylesheet)

    def view(self, supplemental=None):
        return PrimaryResultView(
            slot_binding_id="b1", item=item(),
            supplemental=supplemental or {},
        )

    def test_wrapper_and_heading(self):
        app = simple_app([LayoutElement(ElementKind.TEXT, "title")])
        html = self.render(app, [self.view()])
        assert 'class="symphony-app"' in html
        assert 'data-app="app-1"' in html
        assert "<h2" in html and "Games" in html

    def test_supplemental_results_rendered(self):
        child = SourceSlot(binding_id="b2", heading="Reviews")
        app = simple_app([LayoutElement(ElementKind.TEXT, "title")],
                         children=(child,))
        supp = SourceResult("s2", (item(title="A review"),), 1)
        html = self.render(app, [self.view({"b2": supp})])
        assert "symphony-supplemental" in html
        assert "A review" in html

    def test_empty_supplemental_placeholder(self):
        child = SourceSlot(binding_id="b2", heading="Reviews")
        app = simple_app([LayoutElement(ElementKind.TEXT, "title")],
                         children=(child,))
        html = self.render(app, [self.view({"b2": SourceResult.empty(
            "s2")})])
        assert "No supplemental results" in html

    def test_ads_slot(self):
        app = simple_app([LayoutElement(ElementKind.TEXT, "title")],
                         ads_binding=True)
        ad = item(title="Buy now", fields={"ad_id": "ad-1"})
        html = self.render(app, [self.view()], ads=(ad,))
        assert "symphony-ads" in html
        assert 'data-ad="ad-1"' in html

    def test_theme_styles_inlined(self):
        app = simple_app([LayoutElement(ElementKind.TEXT, "title")],
                         theme="midnight")
        html = self.render(app, [self.view()])
        assert "#101418" in html  # midnight background

    def test_stylesheet_included(self):
        app = simple_app([LayoutElement(ElementKind.TEXT, "title")])
        sheet = StyleSheet()
        sheet.add_rule(".symphony-result", border="1px solid red")
        html = self.render(app, [self.view()], stylesheet=sheet)
        assert "<style>" in html and "1px solid red" in html

    def test_views_filtered_by_slot(self):
        app = simple_app([LayoutElement(ElementKind.TEXT, "title")])
        stray = PrimaryResultView(slot_binding_id="other",
                                  item=item(title="STRAY"))
        html = self.render(app, [stray])
        assert "STRAY" not in html


class TestWizard:
    def test_tone_mapping(self):
        wizard = PresentationWizard()
        assert wizard.recommend("dark")["theme"] == "midnight"
        assert wizard.recommend("playful")["theme"] == "storefront"
        assert wizard.recommend("unknown-tone")["theme"] == "clean"

    def test_accent_color(self):
        result = PresentationWizard().recommend("professional", "#123")
        assert result["element_styles"]["heading"]["color"] == "#123"
