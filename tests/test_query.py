"""Tests for the query language: lexer, parser, evaluator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QueryError
from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument, FieldMode
from repro.searchengine.index import InvertedIndex
from repro.searchengine.query import (
    AndNode,
    FilterNode,
    NotNode,
    OrNode,
    PhraseNode,
    QueryEvaluator,
    TermNode,
    extract_terms,
    parse_query,
)


class TestParser:
    def test_single_term(self):
        assert parse_query("halo") == TermNode("halo")

    def test_implicit_and(self):
        node = parse_query("halo review")
        assert isinstance(node, AndNode)
        assert node.children == (TermNode("halo"), TermNode("review"))

    def test_explicit_and_keyword(self):
        assert parse_query("halo AND review") == parse_query("halo review")

    def test_or(self):
        node = parse_query("halo OR zelda")
        assert isinstance(node, OrNode)

    def test_or_lowercase_is_term(self):
        # Only uppercase OR is the operator.
        node = parse_query("this or that")
        assert isinstance(node, AndNode)
        assert TermNode("or") in node.children

    def test_not(self):
        node = parse_query("NOT wine")
        assert node == NotNode(TermNode("wine"))

    def test_phrase(self):
        assert parse_query('"combat evolved"') == \
            PhraseNode("combat evolved")

    def test_filter(self):
        assert parse_query("site:gamespot.com") == \
            FilterNode("site", "gamespot.com")

    def test_filter_field_lowercased(self):
        assert parse_query("Site:IGN.com").field == "site"

    def test_parentheses_precedence(self):
        node = parse_query("(halo OR zelda) review")
        assert isinstance(node, AndNode)
        assert isinstance(node.children[0], OrNode)

    def test_or_binds_looser_than_and(self):
        node = parse_query("a b OR c d")
        assert isinstance(node, OrNode)
        assert all(isinstance(child, AndNode) for child in node.children)

    def test_complex_query(self):
        node = parse_query(
            '"Halo Odyssey" review site:gamespot.com NOT preview'
        )
        assert isinstance(node, AndNode)
        kinds = [type(child).__name__ for child in node.children]
        assert kinds == ["PhraseNode", "TermNode", "FilterNode",
                         "NotNode"]

    def test_empty_query_rejected(self):
        for bad in ("", "   "):
            with pytest.raises(QueryError):
                parse_query(bad)

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(QueryError):
            parse_query("(halo")

    def test_dangling_or_rejected(self):
        with pytest.raises(QueryError):
            parse_query("halo OR")

    @given(st.lists(st.sampled_from(
        ["halo", "zelda", "review", '"combat evolved"',
         "site:ign.com", "NOT", "OR", "(", ")"]
    ), min_size=1, max_size=8))
    def test_parser_never_crashes_unexpectedly(self, tokens):
        text = " ".join(tokens)
        try:
            node = parse_query(text)
        except QueryError:
            return
        assert node is not None


class TestExtractTerms:
    def test_positive_terms_only(self):
        analyzer = Analyzer()
        node = parse_query("halo reviews NOT previews")
        assert extract_terms(node, analyzer) == ["halo", "review"]

    def test_double_negation_restores(self):
        analyzer = Analyzer()
        node = parse_query("NOT NOT halo")
        assert extract_terms(node, analyzer) == ["halo"]

    def test_phrase_terms_included_once(self):
        analyzer = Analyzer()
        node = parse_query('"halo game" halo')
        assert extract_terms(node, analyzer) == ["halo", "game"]


@pytest.fixture()
def search_index():
    index = InvertedIndex(Analyzer(),
                          field_modes={"site": FieldMode.KEYWORD})
    docs = [
        ("d1", "Halo Odyssey Review", "the best halo game ever",
         "gamespot.com"),
        ("d2", "Zelda Guide", "zelda walkthrough and tips", "ign.com"),
        ("d3", "Halo and Zelda compared", "crossover combat evolved",
         "blog.example"),
        ("d4", "Wine pairings", "cabernet and merlot notes",
         "winespectator.example"),
    ]
    for doc_id, title, body, site in docs:
        index.add(FieldedDocument(
            doc_id, {"title": title, "body": body, "site": site}
        ))
    return index


class TestEvaluator:
    def evaluate(self, index, text):
        return QueryEvaluator(index, ["title", "body"]).candidates(
            parse_query(text)
        )

    def test_term_across_fields(self, search_index):
        assert self.evaluate(search_index, "halo") == {"d1", "d3"}

    def test_implicit_and(self, search_index):
        assert self.evaluate(search_index, "halo zelda") == {"d3"}

    def test_or(self, search_index):
        assert self.evaluate(search_index, "zelda OR wine") == \
            {"d2", "d3", "d4"}

    def test_not(self, search_index):
        assert self.evaluate(search_index, "halo NOT zelda") == {"d1"}

    def test_phrase(self, search_index):
        assert self.evaluate(search_index, '"combat evolved"') == {"d3"}
        assert self.evaluate(search_index, '"evolved combat"') == set()

    def test_site_filter(self, search_index):
        assert self.evaluate(search_index, "halo site:gamespot.com") == \
            {"d1"}

    def test_site_filter_no_match(self, search_index):
        assert self.evaluate(search_index, "halo site:nowhere.example") \
            == set()

    def test_text_field_filter(self, search_index):
        assert self.evaluate(search_index, "title:zelda") == {"d2", "d3"}

    def test_stemmed_match(self, search_index):
        assert "d1" in self.evaluate(search_index, "reviews")

    def test_stopword_only_term_matches_nothing(self, search_index):
        assert self.evaluate(search_index, "the") == set()

    def test_and_short_circuit_empty(self, search_index):
        assert self.evaluate(search_index, "halo zzzzz") == set()

    def test_de_morgan_consistency(self, search_index):
        """NOT (a OR b) == NOT a AND NOT b over the candidate sets."""
        left = self.evaluate(search_index, "NOT (halo OR zelda)")
        right = self.evaluate(search_index, "NOT halo NOT zelda")
        assert left == right
