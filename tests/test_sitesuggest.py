"""Tests for Site Suggest: co-occurrence graph and suggestion ranking."""

import pytest

from repro.errors import ValidationError
from repro.searchengine.logs import ClickEvent, QueryLog
from repro.sitesuggest import SiteCooccurrenceGraph, SiteSuggest


def click(query, site):
    return ClickEvent(timestamp_ms=0, query=query,
                      url=f"http://{site}/page")


def build_log(pairs):
    """pairs: iterable of (query, [sites clicked])."""
    log = QueryLog()
    for query, sites in pairs:
        for site in sites:
            log.log_click(click(query, site))
    return log


@pytest.fixture()
def game_graph():
    # gamespot/ign co-click heavily; wine site co-clicks with neither.
    log = build_log([
        ("halo review", ["gamespot.com", "ign.com"]),
        ("zelda review", ["gamespot.com", "ign.com", "teamxbox.com"]),
        ("mario guide", ["ign.com", "teamxbox.com"]),
        ("combat tips", ["gamespot.com", "teamxbox.com"]),
        ("cabernet notes", ["winespectator.example",
                            "cellartracker.example"]),
    ])
    return SiteCooccurrenceGraph.from_query_log(log)


class TestGraph:
    def test_cooccurrence_weights(self, game_graph):
        assert game_graph.edge_weight("gamespot.com", "ign.com") == 2.0
        assert game_graph.edge_weight("ign.com", "gamespot.com") == 2.0

    def test_no_self_edges(self, game_graph):
        assert game_graph.edge_weight("ign.com", "ign.com") == 0.0

    def test_unrelated_sites_unconnected(self, game_graph):
        assert game_graph.edge_weight(
            "gamespot.com", "winespectator.example"
        ) == 0.0

    def test_degree(self, game_graph):
        assert game_graph.degree("gamespot.com") == \
            sum(game_graph.neighbors("gamespot.com").values())

    def test_single_click_queries_add_no_edges(self):
        graph = SiteCooccurrenceGraph.from_query_log(
            build_log([("solo", ["only.example"])])
        )
        assert graph.sites() == []

    def test_pmi_positive_for_strong_pairs(self, game_graph):
        strong = game_graph.pmi("winespectator.example",
                                "cellartracker.example")
        weak = game_graph.pmi("gamespot.com", "winespectator.example")
        assert strong > weak == 0.0

    def test_blend_link_graph_adds_weak_edges(self, game_graph):
        before = game_graph.edge_weight("gamespot.com", "blog.example")
        game_graph.blend_link_graph(
            {"blog.example": {"gamespot.com": 4}}, weight=0.25
        )
        after = game_graph.edge_weight("gamespot.com", "blog.example")
        assert before == 0.0 and after == pytest.approx(1.0)

    def test_add_edge_ignores_nonpositive(self):
        graph = SiteCooccurrenceGraph()
        graph.add_edge("a", "b", 0.0)
        graph.add_edge("a", "b", -1.0)
        assert graph.sites() == []


class TestSuggest:
    def test_random_walk_finds_coclicked_sites(self, game_graph):
        suggestions = SiteSuggest(game_graph).suggest(
            ["gamespot.com"], count=3
        )
        sites = [s.site for s in suggestions]
        assert "ign.com" in sites
        assert "teamxbox.com" in sites
        assert "winespectator.example" not in sites

    def test_seeds_excluded_from_output(self, game_graph):
        suggestions = SiteSuggest(game_graph).suggest(
            ["gamespot.com", "ign.com"], count=5
        )
        assert {"gamespot.com", "ign.com"}.isdisjoint(
            s.site for s in suggestions
        )

    def test_scores_sorted_descending(self, game_graph):
        suggestions = SiteSuggest(game_graph).suggest(
            ["gamespot.com"], count=5
        )
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_pmi_method(self, game_graph):
        suggestions = SiteSuggest(game_graph).suggest(
            ["winespectator.example"], count=3, method="pmi"
        )
        assert suggestions[0].site == "cellartracker.example"
        assert suggestions[0].method == "pmi"

    def test_multiple_seeds_paper_scenario(self, game_graph):
        """§II-B: seeds {gamespot, ign, teamxbox} — topical site comes
        back, off-topic doesn't."""
        suggestions = SiteSuggest(game_graph).suggest(
            ["gamespot.com", "ign.com", "teamxbox.com"], count=5
        )
        assert all("wine" not in s.site for s in suggestions)

    def test_unknown_seed_yields_empty(self, game_graph):
        assert SiteSuggest(game_graph).suggest(
            ["unknown.example"], count=3
        ) == []

    def test_no_seeds_rejected(self, game_graph):
        with pytest.raises(ValidationError):
            SiteSuggest(game_graph).suggest([])

    def test_unknown_method_rejected(self, game_graph):
        with pytest.raises(ValidationError):
            SiteSuggest(game_graph).suggest(["gamespot.com"],
                                            method="magic")

    def test_count_limits_output(self, game_graph):
        suggestions = SiteSuggest(game_graph).suggest(
            ["gamespot.com"], count=1
        )
        assert len(suggestions) == 1
