"""Tests for the search-engine facade: verticals, options, logging."""

import pytest

from repro.errors import QueryError
from repro.searchengine.engine import (
    SearchOptions,
    Vertical,
    build_engine,
)
from repro.simweb.vocab import topic_vocabulary


@pytest.fixture()
def fresh_engine(small_web):
    """A private engine instance (tests here mutate the log/clock)."""
    return build_engine(small_web)


class TestBasicSearch:
    def test_returns_ranked_results(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        response = engine.search("web", entity)
        assert response.total_matches > 0
        scores = [r.score for r in response.results]
        assert scores == sorted(scores, reverse=True)

    def test_result_shape(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        result = engine.search("web", entity).results[0]
        assert result.url.startswith("http://")
        assert result.title
        assert result.site
        assert result.vertical == "web"

    def test_count_and_offset_page_through(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        first = engine.search("web", entity, SearchOptions(count=3))
        second = engine.search(
            "web", entity, SearchOptions(count=3, offset=3)
        )
        assert len(first.results) == 3
        assert not set(first.urls()) & set(second.urls())

    def test_unknown_vertical_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.search("maps", "halo")

    def test_bad_query_raises(self, engine):
        with pytest.raises(QueryError):
            engine.search("web", "   ")

    def test_all_verticals_answer(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        for vertical in Vertical:
            response = engine.search(vertical, entity.split()[0])
            assert response.vertical == vertical.value


class TestSiteRestriction:
    def test_results_confined_to_sites(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        sites = ("gamespot.com", "ign.com")
        response = engine.search(
            "web", f'"{entity}"', SearchOptions(count=10, sites=sites)
        )
        assert response.total_matches > 0
        assert {r.site for r in response.results} <= set(sites)

    def test_every_entity_found_on_review_sites(self, engine, small_web):
        """The §II-B promise: focused review search works per title."""
        sites = tuple(topic_vocabulary("video_games").sites[:3])
        for entity in small_web.entities["video_games"][:10]:
            response = engine.search(
                "web", f'"{entity}" review',
                SearchOptions(count=5, sites=sites),
            )
            assert response.total_matches > 0, entity

    def test_exclude_sites(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        everywhere = engine.search("web", f'"{entity}"',
                                   SearchOptions(count=30))
        top_site = everywhere.results[0].site
        excluded = engine.search(
            "web", f'"{entity}"',
            SearchOptions(count=30, exclude_sites=(top_site,)),
        )
        assert top_site not in {r.site for r in excluded.results}
        assert excluded.total_matches < everywhere.total_matches


class TestOptions:
    def test_augment_terms_narrow(self, engine):
        broad = engine.search("web", "game", SearchOptions(count=50))
        narrowed = engine.search(
            "web", "game",
            SearchOptions(count=50, augment_terms=("review",)),
        )
        assert narrowed.total_matches <= broad.total_matches

    def test_freshness_window(self, fresh_engine):
        all_news = fresh_engine.search("news", "breaking OR report",
                                       SearchOptions(count=50))
        recent = fresh_engine.search(
            "news", "breaking OR report",
            SearchOptions(count=50, freshness_days=30),
        )
        assert recent.total_matches <= all_news.total_matches


class TestRankingBehaviour:
    def test_authority_prior_affects_web_order(self, small_web):
        with_prior = build_engine(small_web, use_authority=True)
        without = build_engine(small_web, use_authority=False)
        entity = small_web.entities["video_games"][1]
        a = with_prior.search("web", entity, SearchOptions(count=10))
        b = without.search("web", entity, SearchOptions(count=10))
        assert a.total_matches == b.total_matches  # same candidates

    def test_news_prefers_recent_on_equal_relevance(self, fresh_engine,
                                                    small_web):
        response = fresh_engine.search("news", "report OR statement",
                                       SearchOptions(count=20))
        assert response.total_matches > 0


class TestLatencyAndLogging:
    def test_clock_advances(self, fresh_engine):
        before = fresh_engine.clock.now_ms
        response = fresh_engine.search("web", "game")
        assert fresh_engine.clock.now_ms > before
        assert response.elapsed_ms > 0

    def test_queries_logged_with_app_id(self, fresh_engine):
        fresh_engine.search("web", "game", app_id="app-1",
                            session_id="s-1")
        event = fresh_engine.log.queries[-1]
        assert event.app_id == "app-1"
        assert event.session_id == "s-1"
        assert event.query == "game"
        assert event.result_urls

    def test_latency_grows_with_candidates(self, fresh_engine):
        rare = fresh_engine.search("web", '"combat evolved zzz"')
        common = fresh_engine.search("web", "game OR wine OR report")
        assert common.elapsed_ms >= rare.elapsed_ms
