"""Tests for shared utilities (ids, clock, hashing, chunking)."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    IdGenerator,
    SimClock,
    chunked,
    deterministic_rng,
    slugify,
    stable_hash,
)


class TestSlugify:
    def test_basic(self):
        assert slugify("Hello World") == "hello-world"

    def test_punctuation_collapses(self):
        assert slugify("Ann's  Video-Games!!") == "ann-s-video-games"

    def test_empty_falls_back(self):
        assert slugify("") == "item"
        assert slugify("!!!") == "item"

    def test_already_clean(self):
        assert slugify("halo-odyssey") == "halo-odyssey"

    @given(st.text(max_size=60))
    def test_output_is_url_safe(self, text):
        slug = slugify(text)
        assert slug
        assert all(c.isalnum() or c == "-" for c in slug)
        assert not slug.startswith("-") and not slug.endswith("-")


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_distinct_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_non_negative(self):
        for value in ("x", 42, ("t", 1)):
            assert stable_hash(value) >= 0


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = deterministic_rng("seed")
        b = deterministic_rng("seed")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_seed_different_stream(self):
        a = deterministic_rng("seed-1")
        b = deterministic_rng("seed-2")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_remainder(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_empty(self):
        assert list(chunked([], 3)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    @given(st.lists(st.integers(), max_size=50),
           st.integers(min_value=1, max_value=10))
    def test_roundtrip(self, items, size):
        batches = list(chunked(items, size))
        assert [x for batch in batches for x in batch] == items
        assert all(len(batch) <= size for batch in batches)


class TestIdGenerator:
    def test_sequential(self):
        ids = IdGenerator()
        assert ids.next_id("app") == "app-000001"
        assert ids.next_id("app") == "app-000002"

    def test_independent_prefixes(self):
        ids = IdGenerator()
        ids.next_id("a")
        assert ids.next_id("b") == "b-000001"

    def test_token_prefix_and_uniqueness(self):
        ids = IdGenerator(seed=3)
        t1 = ids.token("embed")
        t2 = ids.token("embed")
        assert t1.startswith("embed_")
        assert t1 != t2

    def test_token_deterministic_across_instances(self):
        assert IdGenerator(seed=9).token("k") == \
            IdGenerator(seed=9).token("k")


class TestSimClock:
    def test_starts_in_2010(self):
        assert SimClock().now_ms == 1_262_304_000_000

    def test_advance(self):
        clock = SimClock(start_ms=0)
        clock.advance(150)
        assert clock.now_ms == 150

    def test_advance_rounds(self):
        clock = SimClock(start_ms=0)
        clock.advance(1.6)
        assert clock.now_ms == 2

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_timestamp_seconds(self):
        clock = SimClock(start_ms=5000)
        assert clock.timestamp() == 5.0
