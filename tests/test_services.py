"""Tests for the service bus, REST/SOAP bindings, samples, and ads."""

import pytest

from repro.errors import (
    NotFoundError,
    ServiceError,
    ServiceFaultError,
    ValidationError,
)
from repro.services.ads import AdService
from repro.services.bus import ServiceBus
from repro.services.rest import RestClient, RestService
from repro.services.samples import (
    PricingService,
    ReviewArchiveService,
    WeatherService,
)
from repro.services.soap import (
    SoapClient,
    SoapEnvelope,
    SoapOperation,
    SoapService,
)
from repro.util import SimClock


class EchoRest(RestService):
    name = "echo"

    def __init__(self):
        super().__init__()
        self.route("GET /echo/{word}", lambda p: {"word": p["word"],
                                                  **p})


class AdderSoap(SoapService):
    name = "adder"

    def __init__(self):
        super().__init__()
        self.operation(
            SoapOperation("Add", ("a", "b"), ("sum",)),
            lambda p: {"sum": p["a"] + p["b"]},
        )
        self.operation(
            SoapOperation("Bad", (), ("missing",)),
            lambda p: {"wrong": 1},
        )


class TestBus:
    def test_register_and_invoke(self):
        bus = ServiceBus()
        bus.register(EchoRest())
        result = bus.invoke("echo", "GET /echo/hello", {})
        assert result["word"] == "hello"

    def test_unknown_service(self):
        with pytest.raises(NotFoundError):
            ServiceBus().invoke("nope", "GET /x", {})

    def test_unregister(self):
        bus = ServiceBus()
        bus.register(EchoRest())
        bus.unregister("echo")
        with pytest.raises(NotFoundError):
            bus.invoke("echo", "GET /echo/x", {})

    def test_latency_charged(self):
        clock = SimClock(start_ms=0)
        bus = ServiceBus(clock=clock, base_latency_ms=25)
        bus.register(EchoRest())
        bus.invoke("echo", "GET /echo/x", {})
        assert clock.now_ms == 25

    def test_stats_track_calls_and_failures(self):
        bus = ServiceBus(failure_probability=1.0, seed=4)
        bus.register(EchoRest())
        with pytest.raises(ServiceError):
            bus.invoke("echo", "GET /echo/x", {})
        stats = bus.stats("echo")
        assert stats.calls == 1 and stats.failures == 1

    def test_descriptors_sorted(self):
        bus = ServiceBus()
        bus.register(EchoRest())
        bus.register(PricingService())
        names = [d.name for d in bus.descriptors()]
        assert names == sorted(names)


class TestRest:
    def test_path_params_extracted(self):
        service = EchoRest()
        result = service.invoke("GET /echo/halo", {"extra": "1"})
        assert result["word"] == "halo"
        assert result["extra"] == "1"

    def test_method_mismatch_404(self):
        service = EchoRest()
        with pytest.raises(NotFoundError):
            service.invoke("POST /echo/halo", {})

    def test_client_helpers(self):
        bus = ServiceBus()
        bus.register(EchoRest())
        client = RestClient(bus, "echo")
        assert client.get("/echo/hi")["word"] == "hi"
        with pytest.raises(ServiceError):
            client.must_get("/nope")

    def test_describe(self):
        descriptor = EchoRest().describe()
        assert descriptor.protocol == "rest"
        assert "GET /echo/{word}" in descriptor.operations


class TestSoap:
    def test_call_and_response_envelope(self):
        service = AdderSoap()
        response = service.call(SoapEnvelope("Add", {"a": 2, "b": 3}))
        assert response.operation == "AddResponse"
        assert response.body == {"sum": 5}

    def test_missing_input_part_faults(self):
        with pytest.raises(ServiceFaultError) as excinfo:
            AdderSoap().invoke("Add", {"a": 2})
        assert excinfo.value.code == "Client.MissingPart"

    def test_missing_output_part_faults(self):
        with pytest.raises(ServiceFaultError) as excinfo:
            AdderSoap().invoke("Bad", {})
        assert excinfo.value.code == "Server.MissingPart"

    def test_unknown_operation(self):
        with pytest.raises(NotFoundError):
            AdderSoap().invoke("Nope", {})

    def test_wsdl_lite(self):
        wsdl = AdderSoap().wsdl()
        assert wsdl["service"] == "adder"
        assert wsdl["operations"]["Add"]["input"] == ["a", "b"]

    def test_client_over_bus(self):
        bus = ServiceBus()
        bus.register(AdderSoap())
        client = SoapClient(bus, "adder")
        assert client.call("Add", a=1, b=1) == {"sum": 2}

    def test_validation_error_becomes_fault(self):
        service = SoapService()
        service.name = "v"
        service.operation(
            SoapOperation("Op", ("x",), ("y",)),
            lambda p: (_ for _ in ()).throw(ValidationError("bad x")),
        )
        with pytest.raises(ServiceFaultError) as excinfo:
            service.invoke("Op", {"x": 1})
        assert excinfo.value.code == "Client.BadInput"


class TestSamples:
    def test_pricing_deterministic_default(self):
        service = PricingService(seed=1)
        a = service.invoke("GET /prices/halo", {})
        b = service.invoke("GET /prices/halo", {})
        assert a == b
        assert a["price"] > 0

    def test_pricing_override(self):
        service = PricingService()
        service.set_price("Halo Odyssey", 12.50, 0)
        quote = service.invoke("GET /prices/Halo Odyssey", {})
        assert quote["price"] == 12.50
        assert quote["in_stock"] is False

    def test_pricing_post_update(self):
        service = PricingService()
        service.invoke("GET /prices/x", {})
        result = service.invoke(
            "POST /prices/x", {"price": "5.00", "stock": "2"}
        )
        assert result["updated"]
        assert service.invoke("GET /prices/x", {})["stock"] == 2

    def test_review_archive_from_web(self, small_web):
        service = ReviewArchiveService(web=small_web)
        entity = small_web.entities["video_games"][0]
        result = service.invoke("GetReviews", {"entity": entity})
        assert result["reviews"]
        average = service.invoke("GetAverageScore", {"entity": entity})
        assert 3.0 <= average["average"] <= 9.8

    def test_review_archive_unknown_entity_faults(self):
        service = ReviewArchiveService()
        with pytest.raises(ServiceFaultError):
            service.invoke("GetReviews", {"entity": "Nothing"})

    def test_review_archive_manual_add(self):
        service = ReviewArchiveService()
        service.add_review("Halo", "gamespot.com", 9.5)
        result = service.invoke("GetAverageScore", {"entity": "halo"})
        assert result["average"] == 9.5

    def test_weather_deterministic(self):
        service = WeatherService(seed=2)
        a = service.invoke("GET /weather/Kyoto", {})
        assert a == service.invoke("GET /weather/Kyoto", {})
        assert a["condition"] in ("sunny", "cloudy", "rain", "snow",
                                  "windy")


class TestAds:
    def make_service(self):
        ads = AdService()
        alpha = ads.create_advertiser("Alpha", 100.0)
        beta = ads.create_advertiser("Beta", 100.0)
        ads.create_campaign(alpha.advertiser_id, ["halo", "game"],
                            0.50, "Alpha Store", "http://alpha.example",
                            quality=1.0)
        ads.create_campaign(beta.advertiser_id, ["game"],
                            0.30, "Beta Deals", "http://beta.example",
                            quality=1.0)
        return ads, alpha, beta

    def test_keyword_matching(self):
        ads, *_ = self.make_service()
        selected = ads.select_ads("halo news", "app-1")
        assert [ad.headline for ad in selected] == ["Alpha Store"]

    def test_gsp_pricing_second_price_plus_penny(self):
        ads, *_ = self.make_service()
        selected = ads.select_ads("best game deals", "app-1", count=2)
        assert selected[0].headline == "Alpha Store"
        assert selected[0].price_per_click == pytest.approx(0.31)
        assert selected[1].price_per_click == pytest.approx(0.01)

    def test_price_never_exceeds_bid(self):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 10.0)
        ads.create_campaign(advertiser.advertiser_id, ["x"], 0.05,
                            "Low", "http://low.example")
        other = ads.create_advertiser("B", 10.0)
        ads.create_campaign(other.advertiser_id, ["x"], 0.90,
                            "High", "http://high.example")
        selected = ads.select_ads("x", "app")
        high = next(a for a in selected if a.headline == "High")
        assert high.price_per_click <= 0.90

    def test_click_charges_and_credits(self):
        ads, alpha, __ = self.make_service()
        ad = ads.select_ads("halo", "app-1")[0]
        result = ads.record_click(ad.ad_id, now_ms=1)
        assert result["charged"] == ad.price_per_click
        assert alpha.balance == pytest.approx(
            100.0 - result["charged"]
        )
        assert ads.designer_earnings("app-1") == pytest.approx(
            result["charged"] * 0.70, abs=1e-6
        )

    def test_ledger_balances(self):
        ads, alpha, beta = self.make_service()
        for query in ("halo", "game fun", "halo game"):
            for ad in ads.select_ads(query, "app-1", count=2):
                ads.record_click(ad.ad_id)
        spend = (ads.advertiser_spend(alpha.advertiser_id)
                 + ads.advertiser_spend(beta.advertiser_id))
        payout = ads.designer_earnings("app-1")
        platform = ads.platform_revenue()
        assert spend == pytest.approx(payout + platform, abs=1e-6)

    def test_budget_exhaustion_excludes_campaign(self):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 100.0)
        ads.create_campaign(advertiser.advertiser_id, ["x"], 1.0,
                            "Capped", "http://c.example",
                            daily_budget=0.02)
        ad = ads.select_ads("x", "app")[0]
        ads.record_click(ad.ad_id)  # spends the reserve price 0.01...
        ads.record_click(ad.ad_id)
        ads.record_click(ad.ad_id)
        assert ads.select_ads("x", "app") == []

    def test_insufficient_balance_excludes_campaign(self):
        ads = AdService()
        advertiser = ads.create_advertiser("Poor", 0.001)
        ads.create_campaign(advertiser.advertiser_id, ["x"], 0.50,
                            "Broke", "http://b.example")
        assert ads.select_ads("x", "app") == []

    def test_click_unknown_ad(self):
        ads = AdService()
        with pytest.raises(NotFoundError):
            ads.record_click("ad-xxxxxx")

    def test_campaign_validation(self):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 1.0)
        with pytest.raises(ValidationError):
            ads.create_campaign(advertiser.advertiser_id, ["x"], 0,
                                "H", "http://x.example")
        with pytest.raises(ValidationError):
            ads.create_campaign(advertiser.advertiser_id, ["the of"],
                                0.5, "H", "http://x.example")

    def test_bus_integration(self):
        bus = ServiceBus()
        ads, *_ = self.make_service()
        bus.register(ads)
        rows = bus.invoke("adcenter", "GET /ads",
                          {"query": "halo", "app_id": "a", "count": 1})
        assert rows[0]["headline"] == "Alpha Store"
        click = bus.invoke(
            "adcenter", f"POST /clicks/{rows[0]['ad_id']}", {}
        )
        assert click["charged"] > 0

    def test_invalid_share_rejected(self):
        with pytest.raises(ValidationError):
            AdService(designer_share=1.5)
