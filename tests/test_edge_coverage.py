"""Edge-path coverage: small behaviours not exercised elsewhere."""

import pytest

from repro.core.capability import CapabilityProfile, TABLE_I_ROWS
from repro.core.datasources import ServiceSource, SourceItem, SourceQuery
from repro.core.presentation import Theme, ThemeRegistry
from repro.errors import NotFoundError, RenderError
from repro.services.bus import ServiceBus
from repro.services.rest import RestService


class TestCapabilityProfile:
    def make(self):
        return CapabilityProfile(
            system="X", search_api="A", custom_sites="B",
            proprietary_structured_data="C", monetization="D",
            custom_ui="E", deployment="F",
        )

    def test_cells_follow_row_order(self):
        assert self.make().cells() == ("A", "B", "C", "D", "E", "F")
        assert len(TABLE_I_ROWS) == 6

    def test_to_dict_keys_are_row_names(self):
        data = self.make().to_dict()
        assert data["system"] == "X"
        for row in TABLE_I_ROWS:
            assert row in data


class TestSourceItemLookup:
    def test_common_properties_fallback(self):
        item = SourceItem(item_id="i", title="T",
                          url="http://u.example", snippet="S")
        assert item.get("title") == "T"
        assert item.get("url") == "http://u.example"
        assert item.get("snippet") == "S"
        assert item.get("missing", "dflt") == "dflt"

    def test_explicit_fields_win_over_common(self):
        item = SourceItem(item_id="i", title="T",
                          fields={"title": "Override"})
        assert item.get("title") == "Override"

    def test_none_field_becomes_empty_string(self):
        item = SourceItem(item_id="i", title="T",
                          fields={"price": None})
        assert item.get("price") == ""


class _ScalarService(RestService):
    name = "scalar"

    def __init__(self):
        super().__init__()
        self.route("GET /value", lambda p: 42)
        self.route("GET /list", lambda p: ["a", "b"])


class TestServiceSourceResponseShapes:
    def make_source(self, operation):
        bus = ServiceBus()
        bus.register(_ScalarService())
        return ServiceSource("s", "S", bus, "scalar", operation, "q")

    def test_scalar_response_wrapped(self):
        source = self.make_source("GET /value")
        result = source.search(SourceQuery("x"))
        assert result.items[0].fields == {"value": 42}

    def test_list_of_scalars_wrapped(self):
        source = self.make_source("GET /list")
        result = source.search(SourceQuery("x"))
        assert [item.fields["value"] for item in result.items] == \
            ["a", "b"]


class TestThemeAndRendererEdges:
    def test_every_builtin_theme_renders_gamerqueen(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        for theme_name in symphony.themes.names():
            session = symphony.designer().edit_application(
                symphony.apps.get(app_id))
            session.apply_template(theme_name)
            symphony.host(session)
            html = symphony.query(app_id, games[0]).html
            assert 'class="symphony-app"' in html

    def test_custom_theme_overrides(self, symphony):
        symphony.themes.register(Theme("brand", {
            "app": {"color": "#bada55"},
        }))
        assert "brand" in symphony.themes.names()

    def test_render_unknown_element_kind_raises(self):
        from repro.core.presentation import HtmlRenderer

        class FakeElement:
            kind = "hologram"
            bind_field = "title"
            style = {}
            css_class = ""

        item = SourceItem(item_id="i", title="T")
        with pytest.raises(RenderError):
            HtmlRenderer().render_element(FakeElement(), item)

    def test_theme_registry_isolated_per_instance(self):
        a = ThemeRegistry()
        b = ThemeRegistry()
        a.register(Theme("only-in-a", {}))
        with pytest.raises(NotFoundError):
            b.get("only-in-a")


class TestDesignerSlotStyle:
    def test_slot_style_reaches_rendered_html(self, symphony,
                                              designer_account):
        sym = symphony
        games = sym.web.entities["video_games"][:2]
        from tests.conftest import make_inventory_csv
        sym.upload_http(designer_account, "inv.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory", ("title",))
        session = sym.designer().new_application(
            "Styled", designer_account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",))
        session.add_text(slot, "title")
        session.set_slot_style(slot, border="2px solid gold",
                               background_color="#111")
        app_id = sym.host(session)
        html = sym.query(app_id, games[0]).html
        assert "2px solid gold" in html
        assert "background-color: #111" in html


class TestBusDescriptorsAndFrontendEdges:
    def test_frontend_trailing_key_on_open_app(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        # No embed keys registered: any key is accepted (open hosting).
        response = symphony.frontend.handle(
            f"/apps/{app_id}/query", {"q": games[0], "key": "whatever"})
        assert response.ok

    def test_describe_service_unknown(self):
        with pytest.raises(NotFoundError):
            ServiceBus().describe_service("ghost")


class TestCliSuggestFailurePath:
    def test_suggest_exits_nonzero_when_empty(self, capsys,
                                              monkeypatch):
        from repro import cli

        class FakeSymphony:
            def site_suggest(self, seeds, count=5):
                return []

        monkeypatch.setattr(cli, "_build_platform",
                            lambda seed: FakeSymphony())
        assert cli.main(["suggest", "nowhere.example"]) == 1
        assert "no suggestions" in capsys.readouterr().out
