"""Doctest execution and whole-library contract checks."""

import doctest
import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors as errors_module
from repro.errors import ReproError

DOCTEST_MODULES = (
    "repro.util",
    "repro.searchengine.analysis",
)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


class TestLibraryContracts:
    def test_every_module_imports(self):
        modules = list(_walk_modules())
        assert len(modules) > 40

    def test_every_custom_exception_is_a_repro_error(self):
        for name, obj in vars(errors_module).items():
            if inspect.isclass(obj) and issubclass(obj, Exception) \
                    and obj.__module__ == "repro.errors":
                assert issubclass(obj, ReproError), name

    def test_every_public_module_has_docstring(self):
        for module in _walk_modules():
            assert module.__doc__, f"{module.__name__} lacks a docstring"

    def test_every_public_class_has_docstring(self):
        missing = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(obj) \
                        and obj.__module__ == module.__name__ \
                        and not obj.__doc__:
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, missing

    def test_dunder_all_entries_resolve(self):
        for module in _walk_modules():
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                assert hasattr(module, name), \
                    f"{module.__name__}.__all__ lists missing {name}"

    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"
