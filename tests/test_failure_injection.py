"""Failure-injection tests: the platform under partial outage.

The hosted-execution promise only matters if Symphony degrades
gracefully: flaky transports must fail loudly at ingest time, flaky
services must degrade to empty slots at query time, and crawl failures
must not poison the collected rows.
"""

import pytest

from repro.core.platform import Symphony
from repro.errors import IngestError, ServiceError, TransportError
from repro.ingest.crawler import CrawlPolicy, Crawler
from repro.ingest.pipeline import DatasetIngestor
from repro.ingest.transports import FaultPolicy, HttpUploadChannel
from repro.services.bus import ServiceBus
from repro.services.samples import PricingService
from repro.storage.tenant import Tenant
from repro.util import SimClock

from tests.conftest import make_inventory_csv


class TestTransportFaults:
    def test_failed_upload_raises_before_any_state_change(self):
        tenant = Tenant("t", "Ann")
        channel = HttpUploadChannel(
            faults=FaultPolicy(fail_probability=1.0, seed=1)
        )
        with pytest.raises(TransportError):
            channel.post_file("inv.csv", b"title\nHalo\n")
        assert tenant.table_names() == []

    def test_truncated_csv_fails_parse_not_partial_load(self):
        """A truncation mid-record must reject the upload, not load a
        half-broken table."""
        tenant = Tenant("t", "Ann")
        data = b"title,price\n" + b"Game X,10.00\n" * 50
        channel = HttpUploadChannel(
            faults=FaultPolicy(truncate_probability=1.0, seed=2)
        )
        payload = channel.post_file("inv.csv", data, "text/csv")
        assert len(payload.data) < len(data)
        ingestor = DatasetIngestor(tenant)
        try:
            report = ingestor.ingest(payload, "inventory")
        except IngestError:
            # Truncation split a row — the whole upload is rejected.
            assert not tenant.has_table("inventory")
        else:
            # Truncation happened to land on a row boundary; the rows
            # that arrived loaded consistently.
            assert report.inserted == len(tenant.table("inventory"))

    def test_intermittent_faults_eventually_succeed(self):
        channel = HttpUploadChannel(
            faults=FaultPolicy(fail_probability=0.5, seed=3)
        )
        outcomes = []
        for __ in range(20):
            try:
                channel.post_file("a.csv", b"title\nX\n")
                outcomes.append(True)
            except TransportError:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)


class TestServiceOutages:
    def test_flaky_bus_surfaces_service_error(self):
        bus = ServiceBus(failure_probability=1.0, seed=5)
        bus.register(PricingService())
        with pytest.raises(ServiceError):
            bus.invoke("pricing", "GET /prices/halo", {})
        assert bus.stats("pricing").failures == 1

    def test_app_survives_total_supplemental_outage(self, tiny_web):
        symphony = Symphony(web=tiny_web, use_authority=False)
        symphony.bus = ServiceBus(clock=symphony.clock,
                                  failure_probability=1.0, seed=7)
        symphony.bus.register(PricingService())
        account = symphony.register_designer("Ann")
        games = symphony.web.entities["video_games"][:3]
        symphony.upload_http(account, "inv.csv",
                             make_inventory_csv(games), "inventory",
                             content_type="text/csv")
        inventory = symphony.add_proprietary_source(
            account, "inventory", ("title",))
        pricing = symphony.add_service_source(
            "Pricing", "pricing", "GET /prices/{sku}", "sku")
        session = symphony.designer().new_application(
            "Shop", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",))
        session.add_text(slot, "title")
        session.drag_source_onto_result_layout(
            slot, pricing.source_id, drive_fields=("title",))
        app_id = symphony.host(session)

        response = symphony.query(app_id, games[0])
        assert response.views  # primary content intact
        assert any("failed" in w for w in response.trace.warnings)
        supplemental = list(
            response.views[0].supplemental.values())[0]
        assert supplemental.items == ()

    def test_partial_outage_some_queries_succeed(self, tiny_web):
        symphony = Symphony(web=tiny_web, use_authority=False)
        symphony.bus = ServiceBus(clock=symphony.clock,
                                  failure_probability=0.5, seed=11)
        symphony.bus.register(PricingService())
        successes = failures = 0
        for i in range(20):
            try:
                symphony.bus.invoke("pricing",
                                    f"GET /prices/sku-{i}", {})
                successes += 1
            except ServiceError:
                failures += 1
        assert successes > 0 and failures > 0

    def test_failed_supplemental_not_cached(self, tiny_web):
        """An outage response must not poison the cache."""
        symphony = Symphony(web=tiny_web, use_authority=False)
        flaky_bus = ServiceBus(clock=symphony.clock,
                               failure_probability=1.0, seed=13)
        flaky_bus.register(PricingService())
        symphony.bus = flaky_bus
        account = symphony.register_designer("Ann")
        games = symphony.web.entities["video_games"][:2]
        symphony.upload_http(account, "inv.csv",
                             make_inventory_csv(games), "inventory",
                             content_type="text/csv")
        inventory = symphony.add_proprietary_source(
            account, "inventory", ("title",))
        pricing = symphony.add_service_source(
            "Pricing", "pricing", "GET /prices/{sku}", "sku")
        session = symphony.designer().new_application(
            "Shop", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",))
        session.add_text(slot, "title")
        session.drag_source_onto_result_layout(
            slot, pricing.source_id, drive_fields=("title",))
        app_id = symphony.host(session)

        first = symphony.query(app_id, games[0])
        assert any("failed" in w for w in first.trace.warnings)
        # Service recovers.
        healthy_bus = ServiceBus(clock=symphony.clock)
        healthy_bus.register(PricingService())
        pricing._bus = healthy_bus
        second = symphony.query(app_id, games[0])
        supplemental = list(
            second.views[0].supplemental.values())[0]
        assert supplemental.items  # fresh data, not the cached failure


class TestCrawlerFaults:
    def test_half_failed_crawl_still_collects(self, small_web):
        seeds = [p.url for p in small_web.pages_on("gamespot.com")[:4]]
        crawler = Crawler(small_web, clock=SimClock())
        result = crawler.crawl(seeds, CrawlPolicy(
            max_pages=30, fetch_failure_probability=0.5, seed=17,
        ))
        assert result.pages and result.failed
        # Every collected row is complete (no partial records).
        for row in result.pages:
            assert row["url"] and row["title"] and row["site"]

    def test_total_crawl_failure_yields_empty_not_crash(self,
                                                        small_web):
        seeds = [p.url for p in small_web.pages_on("gamespot.com")[:3]]
        crawler = Crawler(small_web, clock=SimClock())
        result = crawler.crawl(seeds, CrawlPolicy(
            max_pages=30, fetch_failure_probability=1.0, seed=19,
        ))
        assert result.pages == []
        assert len(result.failed) == 3
