"""Tests for the platform extensions: paging, designer editing, token
expiry, rate limiting, CTR-by-position, hosted pages."""

import pytest

from repro.analytics.ctr import ctr_by_position
from repro.core.distribution import SnippetGenerator, render_hosted_page
from repro.core.runtime import RateLimiter
from repro.errors import (
    AuthorizationError,
    ConfigurationError,
    QuotaExceededError,
)
from repro.searchengine.logs import ClickEvent, QueryEvent, QueryLog
from repro.storage.tokens import Scope, TokenAuthority
from repro.util import SimClock

from tests.conftest import make_inventory_csv


class TestPaging:
    @pytest.fixture()
    def paged_app(self, symphony, designer_account):
        sym = symphony
        games = sym.web.entities["video_games"][:10]
        sym.upload_http(designer_account, "inv.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory",
            ("title", "producer", "description"))
        session = sym.designer().new_application(
            "Paged", designer_account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, max_results=3,
            search_fields=("description",))
        session.add_text(slot, "title")
        return sym, sym.host(session), games

    def test_pages_disjoint_and_ordered(self, paged_app):
        sym, app_id, games = paged_app
        query = "classic experience"  # matches every inventory row
        page0 = sym.query(app_id, query, page=0)
        page1 = sym.query(app_id, query, page=1)
        ids0 = [v.item.item_id for v in page0.views]
        ids1 = [v.item.item_id for v in page1.views]
        assert len(ids0) == 3 and len(ids1) == 3
        assert set(ids0).isdisjoint(ids1)

    def test_past_the_end_page_is_empty(self, paged_app):
        sym, app_id, __ = paged_app
        response = sym.query(app_id, "classic experience", page=99)
        assert response.views == ()

    def test_negative_page_clamps_to_first(self, paged_app):
        sym, app_id, __ = paged_app
        first = sym.query(app_id, "classic experience", page=0)
        clamped = sym.query(app_id, "classic experience", page=-3)
        assert [v.item.item_id for v in first.views] == \
            [v.item.item_id for v in clamped.views]

    def test_pages_cached_independently(self, paged_app):
        sym, app_id, __ = paged_app
        sym.query(app_id, "classic experience", page=0)
        response = sym.query(app_id, "classic experience", page=1)
        assert response.trace.cache_misses > 0  # page 1 not a hit of 0


class TestDesignerEditing:
    @pytest.fixture()
    def editable(self, symphony, designer_account):
        sym = symphony
        games = sym.web.entities["video_games"][:3]
        sym.upload_http(designer_account, "inv.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory", ("title",))
        reviews = sym.add_web_source("Reviews", "web")
        session = sym.designer().new_application(
            "Edit", designer_account.tenant.tenant_id)
        slot = session.drag_source_onto_app(inventory.source_id,
                                            search_fields=("title",))
        return session, slot, reviews

    def test_remove_element(self, editable):
        session, slot, __ = editable
        title = session.add_text(slot, "title")
        description = session.add_text(slot, "description")
        session.remove_element(slot, title)
        assert slot.elements == [description]

    def test_remove_foreign_element_rejected(self, editable):
        session, slot, __ = editable
        from repro.core.application import ElementKind, LayoutElement
        stray = LayoutElement(ElementKind.TEXT, "title")
        with pytest.raises(ConfigurationError):
            session.remove_element(slot, stray)

    def test_move_element(self, editable):
        session, slot, __ = editable
        a = session.add_text(slot, "title")
        b = session.add_image(slot, "image_url")
        c = session.add_text(slot, "description")
        session.move_element(slot, c, 0)
        assert slot.elements == [c, a, b]
        session.move_element(slot, c, 99)  # clamps to end
        assert slot.elements[-1] == c

    def test_remove_top_level_slot(self, editable):
        session, slot, __ = editable
        session.remove_slot(slot)
        assert "drag a data source" in session.describe_canvas()

    def test_remove_nested_slot(self, editable):
        session, slot, reviews = editable
        child = session.drag_source_onto_result_layout(
            slot, reviews.source_id, drive_fields=("title",))
        session.remove_slot(child)
        assert slot.children == []

    def test_remove_unknown_slot_rejected(self, editable):
        session, slot, __ = editable
        session.remove_slot(slot)
        with pytest.raises(ConfigurationError):
            session.remove_slot(slot)

    def test_edited_design_still_builds(self, editable):
        session, slot, reviews = editable
        a = session.add_text(slot, "title")
        session.add_text(slot, "description")
        session.remove_element(slot, a)
        child = session.drag_source_onto_result_layout(
            slot, reviews.source_id, drive_fields=("title",))
        session.remove_slot(child)
        app = session.build()
        assert len(app.slots[0].result_layout.elements) == 1
        assert app.slots[0].children == ()


class TestTokenExpiry:
    def test_expired_token_rejected(self):
        authority = TokenAuthority()
        token = authority.mint("t1", scopes=(Scope.READ,),
                               expires_at_ms=1000)
        authority.authorize(token.value, "t1", Scope.READ, now_ms=999)
        with pytest.raises(AuthorizationError, match="expired"):
            authority.authorize(token.value, "t1", Scope.READ,
                                now_ms=1000)

    def test_unexpiring_token(self):
        authority = TokenAuthority()
        token = authority.mint("t1")
        authority.authorize(token.value, "t1", Scope.READ,
                            now_ms=10**15)

    def test_expiry_checked_before_scope(self):
        authority = TokenAuthority()
        token = authority.mint("t1", scopes=(Scope.ADMIN,),
                               expires_at_ms=5)
        with pytest.raises(AuthorizationError, match="expired"):
            authority.resolve(token.value, now_ms=10)


class TestRateLimiter:
    def test_limits_within_window(self):
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=3, window_ms=1000)
        for __ in range(3):
            limiter.check("app")
        with pytest.raises(QuotaExceededError):
            limiter.check("app")

    def test_window_slides(self):
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=2, window_ms=1000)
        limiter.check("app")
        limiter.check("app")
        clock.advance(1001)
        limiter.check("app")  # old events expired

    def test_apps_limited_independently(self):
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=1, window_ms=1000)
        limiter.check("a")
        limiter.check("b")
        with pytest.raises(QuotaExceededError):
            limiter.check("a")

    def test_remaining(self):
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=5, window_ms=1000)
        limiter.check("app")
        assert limiter.remaining("app") == 4
        assert limiter.remaining("other") == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateLimiter(SimClock(), max_requests=0)

    def test_remaining_evicts_in_place_without_copying(self):
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=3, window_ms=1000)
        for __ in range(3):
            limiter.check("app")
        clock.advance(1001)
        # remaining() drops the expired events from the deque itself
        # rather than counting against a filtered copy.
        assert limiter.remaining("app") == 3
        assert len(limiter._events["app"]) == 0

    def test_event_store_is_a_deque(self):
        from collections import deque
        clock = SimClock(start_ms=0)
        limiter = RateLimiter(clock, max_requests=2, window_ms=1000)
        limiter.check("app")
        assert isinstance(limiter._events["app"], deque)

    def test_runtime_integration(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        symphony.runtime.rate_limiter = RateLimiter(
            symphony.clock, max_requests=2, window_ms=3_600_000
        )
        symphony.query(app_id, games[0])
        symphony.query(app_id, games[1])
        with pytest.raises(QuotaExceededError):
            symphony.query(app_id, games[2])


class TestCtrByPosition:
    def make_log(self):
        log = QueryLog()
        urls = tuple(f"http://r.example/{i}" for i in range(5))
        for session in range(4):
            log.log_query(QueryEvent(
                timestamp_ms=session, query="halo", vertical="app",
                app_id="app-1", result_urls=urls,
            ))
        # 3 clicks on rank 1, 1 on rank 3.
        for __ in range(3):
            log.log_click(ClickEvent(
                timestamp_ms=0, query="halo", url=urls[0],
                app_id="app-1",
            ))
        log.log_click(ClickEvent(
            timestamp_ms=0, query="halo", url=urls[2],
            app_id="app-1",
        ))
        # An ad click and an off-list click are ignored.
        log.log_click(ClickEvent(
            timestamp_ms=0, query="halo", url=urls[1],
            app_id="app-1", is_ad=True,
        ))
        log.log_click(ClickEvent(
            timestamp_ms=0, query="halo",
            url="http://elsewhere.example", app_id="app-1",
        ))
        return log

    def test_ctr_per_rank(self):
        stats = ctr_by_position(self.make_log(), "app-1")
        by_rank = {s.position: s for s in stats}
        assert by_rank[1].impressions == 4
        assert by_rank[1].clicks == 3
        assert by_rank[1].ctr == pytest.approx(0.75)
        assert by_rank[3].clicks == 1
        assert by_rank[2].clicks == 0  # ad click ignored

    def test_max_positions_trims(self):
        stats = ctr_by_position(self.make_log(), "app-1",
                                max_positions=2)
        assert max(s.position for s in stats) == 2

    def test_empty_app(self):
        assert ctr_by_position(QueryLog(), "nothing") == []

    def test_live_platform_positions(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        response = symphony.query(app_id, games[0])
        clicked = response.views[0].item.get("detail_url")
        # The runtime logs primary-result urls; click the first one.
        symphony.record_click(app_id, games[0], clicked)
        stats = ctr_by_position(symphony.engine.log, app_id)
        assert stats
        assert stats[0].clicks >= 1


class TestHostedPage:
    def test_full_page_wraps_snippet(self):
        from tests.test_core_distribution import app
        snippet = SnippetGenerator().generate(app())
        page = render_hosted_page(app(), snippet)
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>GamerQueen</title>" in page
        assert snippet.html in page
        assert snippet.javascript in page

    def test_custom_canvas_title(self):
        from tests.test_core_distribution import app
        snippet = SnippetGenerator().generate(app())
        page = render_hosted_page(app(), snippet,
                                  canvas_title="On Facebook")
        assert "<title>On Facebook</title>" in page
