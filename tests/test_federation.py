"""repro.federation: registry, executor, query lab, source, wiring.

Covers the federation subsystem end to end — capability-described
backends over the engine, the baselines, and core data sources; the
scatter-gather executor's budgets, degradation, and telemetry; the
query-generator strategies; the FederatedSearchSource in the runtime;
and the platform/designer/CLI integration points.
"""

from __future__ import annotations

import pytest

from repro.core.application import SourceBinding, SourceRole
from repro.core.capability import BackendDescriptor
from repro.core.datasources import SourceKind, SourceQuery
from repro.core.platform import Symphony
from repro.errors import (
    ConfigurationError,
    DuplicateError,
    NotFoundError,
    TransportError,
)
from repro.federation import (
    BackendRegistry,
    EngineBackend,
    FederatedItem,
    FederatedSearchSource,
    FederationExecutor,
    FederationPolicy,
    QueryGeneratorLab,
    SourceBackend,
    baseline_backend,
    get_generator,
)
from repro.gateway.generations import CORPUS_KEY, TOPOLOGY_KEY
from repro.resilience.deadline import Deadline
from repro.util import SimClock


class _StaticBackend:
    """A hand-fed backend for executor tests."""

    def __init__(self, backend_id, urls, cost=1.0, fail=False,
                 generation_keys=()):
        self.descriptor = BackendDescriptor(
            backend_id=backend_id, system="test", search_api="static",
            cost_per_query=cost, generation_keys=generation_keys,
        )
        self.backend_id = backend_id
        self.urls = urls
        self.fail = fail
        self.calls = 0

    def search(self, text, count=10, deadline=None, context=None):
        self.calls += 1
        if self.fail:
            raise TransportError(f"{self.backend_id} down")
        return [
            FederatedItem(url=url, title=url,
                          backend_id=self.backend_id, rank=rank)
            for rank, url in enumerate(self.urls[:count], start=1)
        ]


def _registry(*backends):
    registry = BackendRegistry()
    for backend in backends:
        registry.add(backend)
    return registry


class TestBackendRegistry:
    def test_duplicate_id_rejected(self):
        registry = _registry(_StaticBackend("a", ["u1"]))
        with pytest.raises(DuplicateError):
            registry.add(_StaticBackend("a", ["u2"]))

    def test_get_and_remove_unknown(self):
        registry = _registry()
        with pytest.raises(NotFoundError):
            registry.get("ghost")
        with pytest.raises(NotFoundError):
            registry.remove("ghost")

    def test_backends_sorted_by_id(self):
        registry = _registry(_StaticBackend("zeta", []),
                             _StaticBackend("alpha", []))
        assert [b.backend_id for b in registry.backends()] \
            == ["alpha", "zeta"]

    def test_generation_keys_union(self):
        registry = _registry(
            _StaticBackend("a", [], generation_keys=("corpus",)),
            _StaticBackend("b", [],
                           generation_keys=("corpus", "tenant:t/x")),
        )
        assert registry.generation_keys() == ("corpus", "tenant:t/x")
        assert registry.generation_keys(("a",)) == ("corpus",)

    def test_select_by_vertical(self, engine):
        registry = _registry(
            EngineBackend("web-local", engine),
            EngineBackend("news-local", engine, vertical="news"),
        )
        assert [b.backend_id for b in registry.select("news")] \
            == ["news-local"]


class TestEngineAndSourceBackends:
    def test_engine_backend_descriptor_and_search(self, engine):
        backend = EngineBackend("local", engine)
        d = backend.descriptor
        assert d.supports_fielded and d.supports_entity
        assert d.generation_keys == (CORPUS_KEY,)
        items = backend.search("game review", count=5)
        assert items and items[0].rank == 1
        assert all(item.backend_id == "local" for item in items)

    def test_clustered_engine_backend_stamps_topology(self, tiny_web):
        sym = Symphony(web=tiny_web, use_authority=False, cluster=2)
        backend = EngineBackend("cluster", sym.engine)
        assert set(backend.descriptor.generation_keys) \
            == {CORPUS_KEY, TOPOLOGY_KEY}

    def test_source_backend_over_web_source(self, symphony):
        source = symphony.add_web_source("Reviews", "web")
        backend = SourceBackend(source)
        assert backend.descriptor.generation_keys == (CORPUS_KEY,)
        assert backend.search("game", count=3)

    def test_source_backend_over_table_infers_table_key(self, symphony):
        account = symphony.register_designer("Ann")
        games = symphony.web.entities["video_games"][:3]
        rows = "title,producer\n" + "\n".join(
            f"{g},Studio {i}" for i, g in enumerate(games)
        )
        symphony.upload_http(account, "inv.csv", rows.encode(),
                             "inventory", content_type="text/csv")
        source = symphony.add_proprietary_source(
            account, "inventory", ("title",))
        backend = SourceBackend(source, backend_id="inventory")
        (key,) = backend.descriptor.generation_keys
        assert key.startswith("tenant:") and key.endswith(":inventory")
        items = backend.search(games[0])
        assert items and items[0].title == games[0]


class TestBaselineBackends:
    def test_all_five_platforms_adapt(self, engine):
        from repro.baselines import (
            EureksterPlatform,
            GoogleBasePlatform,
            GoogleCustomSearchPlatform,
            RollyoPlatform,
            YahooBossPlatform,
        )
        registry = BackendRegistry()
        for platform_cls in (RollyoPlatform, EureksterPlatform,
                             GoogleCustomSearchPlatform,
                             YahooBossPlatform, GoogleBasePlatform):
            registry.add(baseline_backend(platform_cls(engine)))
        assert registry.ids() == ["eurekster", "google-base",
                                  "google-custom", "rollyo", "y-boss"]
        for backend in registry.backends():
            items = backend.search("game review", count=3)
            assert all(item.backend_id == backend.backend_id
                       for item in items)

    def test_site_restriction_respected(self, engine, small_web):
        from repro.baselines import RollyoPlatform
        site = sorted({p.site for p in small_web.pages.values()})[0]
        backend = baseline_backend(RollyoPlatform(engine),
                                   sites=(site,))
        items = backend.search("review", count=10)
        assert items
        assert all(site in item.url for item in items)

    def test_descriptor_costs_external_queries_more(self, engine):
        from repro.baselines import YahooBossPlatform
        local = EngineBackend("local", engine)
        boss = baseline_backend(YahooBossPlatform(engine))
        assert boss.descriptor.cost_per_query \
            > local.descriptor.cost_per_query


class TestQueryGenerators:
    def test_keyword_flattens_to_analyzed_terms(self):
        generator = get_generator("keyword")
        assert generator.generate("Halo: Combat Evolved (2001)") \
            == "halo combat evolved 2001"

    def test_fielded_emits_unquoted_predicates(self):
        fielded = BackendDescriptor(
            backend_id="x", system="s", search_api="a",
            supports_fielded=True,
        )
        generator = get_generator("fielded")
        assert generator.generate("Halo Odyssey", fielded) \
            == "title:halo title:odyssey"

    def test_fielded_falls_back_to_phrase(self):
        unfielded = BackendDescriptor(
            backend_id="x", system="s", search_api="a",
            supports_fielded=False,
        )
        generator = get_generator("fielded")
        assert generator.generate("Halo Odyssey", unfielded) \
            == '"halo odyssey"'

    def test_entity_strategy_uses_entity_field_when_supported(self):
        entity_capable = BackendDescriptor(
            backend_id="x", system="s", search_api="a",
            supports_entity=True,
        )
        generator = get_generator("entity")
        query = generator.generate(
            "halo odyssey", entity_capable,
            context={"entity": "Halo Odyssey",
                     "context_terms": ("review",)},
        )
        assert query == "entity:halo entity:odyssey review"

    def test_entity_strategy_quotes_elsewhere(self):
        generator = get_generator("entity")
        query = generator.generate(
            "halo odyssey", None,
            context={"entity": "Halo Odyssey",
                     "context_terms": ("review",)},
        )
        assert query == '"halo odyssey" review'

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            get_generator("oracle")

    def test_generated_queries_parse(self, engine):
        from repro.searchengine.query import parse_query
        descriptor = BackendDescriptor(
            backend_id="x", system="s", search_api="a",
            supports_fielded=True, supports_entity=True,
        )
        for name in ("keyword", "fielded", "entity"):
            query = get_generator(name).generate(
                "Bioshock Legends review", descriptor,
                context={"entity": "Bioshock Legends"},
            )
            parse_query(query)  # must lex/parse cleanly


class TestQueryGeneratorLab:
    def test_precision_and_cost_accounting(self):
        lab = QueryGeneratorLab()
        lab.charge("keyword", 2.0)
        lab.charge("keyword", 2.0)
        lab.account("keyword", ["u1", "u2", "u3", "u4"], {"u1", "u3"})
        (row,) = lab.report()
        assert row["queries"] == 2
        assert row["cost"] == 4.0
        assert row["precision"] == 0.5
        assert row["cost_per_relevant"] == 2.0

    def test_report_ranks_by_precision(self):
        lab = QueryGeneratorLab()
        lab.account("worse", ["u1", "u2"], {"u1"})
        lab.account("better", ["u1"], {"u1"})
        assert [row["strategy"] for row in lab.report()] \
            == ["better", "worse"]


class TestFederationExecutor:
    def test_failed_backend_degrades_not_raises(self):
        clock = SimClock()
        executor = FederationExecutor(
            _registry(_StaticBackend("ok", ["u1", "u2"]),
                      _StaticBackend("down", ["u3"], fail=True)),
            clock=clock,
        )
        result = executor.search("anything")
        assert result.degraded == ("down",)
        assert result.ok_backends == ("ok",)
        assert [item.url for item in result.items] == ["u1", "u2"]
        failed = next(o for o in result.outcomes if not o.ok)
        assert "down" in failed.error

    def test_retrier_retries_transients(self):
        clock = SimClock()

        class FlakyOnce(_StaticBackend):
            def search(self, *args, **kwargs):
                if self.calls == 0:
                    self.calls += 1
                    raise TransportError("first call fails")
                return super().search(*args, **kwargs)

        flaky = FlakyOnce("flaky", ["u1"])
        executor = FederationExecutor(_registry(flaky), clock=clock)
        result = executor.search("q")
        assert result.degraded == ()
        assert flaky.calls == 2  # retried within the policy

    def test_expired_deadline_skips_backends(self):
        clock = SimClock()
        backend = _StaticBackend("late", ["u1"])
        executor = FederationExecutor(_registry(backend), clock=clock)
        deadline = Deadline(clock, budget_ms=10)
        clock.advance(20)
        result = executor.search("q", deadline=deadline)
        assert backend.calls == 0
        assert result.degraded == ("late",)
        assert result.items == ()

    def test_per_backend_budget_is_a_fraction(self):
        clock = SimClock()
        seen = {}

        class Probe(_StaticBackend):
            def search(self, text, count=10, deadline=None,
                       context=None):
                seen["budget"] = deadline.budget_ms
                return []

        executor = FederationExecutor(
            _registry(Probe("probe", [])), clock=clock,
            policy=FederationPolicy(per_backend_budget_frac=0.5),
        )
        executor.search("q", deadline=Deadline(clock, budget_ms=100))
        assert seen["budget"] == pytest.approx(50.0)

    def test_cost_totals_and_lab_charges(self):
        lab = QueryGeneratorLab()
        executor = FederationExecutor(
            _registry(_StaticBackend("a", ["u1"], cost=1.0),
                      _StaticBackend("b", ["u2"], cost=2.5)),
            lab=lab,
        )
        result = executor.search("q")
        assert result.total_cost == pytest.approx(3.5)
        (row,) = lab.report()
        assert row["strategy"] == "keyword"
        assert row["cost"] == pytest.approx(3.5)

    def test_telemetry_spans_and_metrics(self):
        from repro.telemetry import Telemetry
        clock = SimClock()
        telemetry = Telemetry(clock=clock)
        executor = FederationExecutor(
            _registry(_StaticBackend("ok", ["u1"]),
                      _StaticBackend("down", [], fail=True)),
            clock=clock, telemetry=telemetry,
        )
        executor.search("q")
        names = [span.name for span in telemetry.tracer.spans]
        assert "federation" in names
        assert "backend:ok" in names and "backend:down" in names
        prometheus = telemetry.metrics.render_prometheus()
        assert "federation_queries_total 1.0" in prometheus
        assert "federation_degraded_total 1.0" in prometheus

    def test_unknown_fusion_method_raises(self):
        executor = FederationExecutor(
            _registry(_StaticBackend("a", ["u1"])))
        with pytest.raises(ConfigurationError):
            executor.search("q", fusion="borda")


class TestFederatedSearchSource:
    def _executor(self):
        return FederationExecutor(_registry(
            _StaticBackend("a", [f"uA{i}" for i in range(8)]),
            _StaticBackend("b", [f"uB{i}" for i in range(8)]),
            _StaticBackend("down", ["x"], fail=True,
                           generation_keys=("tenant:t/inv",)),
        ))

    def test_kind_fields_and_describe(self):
        source = FederatedSearchSource("fed", "Meta", self._executor())
        assert source.kind == SourceKind.FEDERATED
        assert "backends" in source.fields()
        assert source.describe()["backends"] == ["a", "b", "down"]

    def test_degraded_flag_propagates(self):
        source = FederatedSearchSource("fed", "Meta", self._executor())
        result = source.search(SourceQuery("q"))
        assert result.degraded is True
        assert result.items

    def test_offset_windowing(self):
        source = FederatedSearchSource("fed", "Meta", self._executor(),
                                       backend_ids=("a",))
        page1 = source.search(SourceQuery("q", count=3))
        page2 = source.search(SourceQuery("q", count=3, offset=3))
        urls1 = [item.url for item in page1.items]
        urls2 = [item.url for item in page2.items]
        assert len(urls1) == len(urls2) == 3
        assert not set(urls1) & set(urls2)

    def test_generation_keys_union_of_selected_backends(self):
        executor = self._executor()
        everything = FederatedSearchSource("f1", "All", executor)
        assert everything.generation_keys() == ("tenant:t/inv",)
        subset = FederatedSearchSource("f2", "Some", executor,
                                       backend_ids=("a", "b"))
        assert subset.generation_keys() == ()


class TestPlatformIntegration:
    def test_enable_federation_is_idempotent(self, symphony):
        executor = symphony.enable_federation()
        assert symphony.enable_federation() is executor
        assert executor.registry.ids() == ["local"]

    def test_federated_primary_app_end_to_end(self, symphony):
        from repro.baselines import YahooBossPlatform
        executor = symphony.enable_federation()
        executor.registry.add(
            baseline_backend(YahooBossPlatform(symphony.engine)))
        fed = symphony.add_federated_source("Meta search")
        session = symphony.designer().new_application(
            "FedApp", "tenant-1")
        slot = session.drag_source_onto_app(fed.source_id,
                                            heading="Everywhere")
        session.add_text(slot, "title")
        app_id = symphony.host(session)
        game = symphony.web.entities["video_games"][0]
        response = symphony.query(app_id, game)
        assert response.views
        fields = response.views[0].item.fields
        assert "local" in fields["backends"]

    def test_resilience_retry_policy_is_shared(self, tiny_web):
        from repro.resilience import ResilienceConfig, RetryPolicy
        config = ResilienceConfig(retry=RetryPolicy(max_attempts=7))
        sym = Symphony(web=tiny_web, use_authority=False,
                       resilience=config)
        executor = sym.enable_federation()
        assert executor.policy.retry.max_attempts == 7

    def test_generation_bump_invalidates_federated_runtime_cache(
            self, symphony):
        """Re-ingest on a federated table backend drops the runtime's
        cached fused results for the federated source."""
        sym = symphony
        account = sym.register_designer("Ann")
        games = sym.web.entities["video_games"][:3]
        rows = "title,producer\n" + "\n".join(
            f"{g},Studio {i}" for i, g in enumerate(games))
        sym.upload_http(account, "inv.csv", rows.encode(), "inventory",
                        content_type="text/csv")
        table_source = sym.add_proprietary_source(
            account, "inventory", ("title",))
        executor = sym.enable_federation()
        executor.registry.add(
            SourceBackend(table_source, backend_id="inventory"))
        fed = sym.add_federated_source("Meta")
        session = sym.designer().new_application(
            "FedApp", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(fed.source_id)
        session.add_text(slot, "title")
        app_id = sym.host(session)

        sym.query(app_id, games[0])
        cached = sym.query(app_id, games[0])
        assert cached.trace.cache_hits >= 1
        fresh = rows.replace("Studio", "Reissue")
        sym.upload_http(account, "inv2.csv", fresh.encode(),
                        "inventory", content_type="text/csv",
                        key_field="title")
        after = sym.query(app_id, games[0])
        assert after.trace.cache_hits == 0


class TestRuntimeQueryStrategy:
    def test_binding_round_trips_query_strategy(self):
        binding = SourceBinding(
            binding_id="b1", source_id="s1",
            role=SourceRole.SUPPLEMENTAL, drive_fields=("title",),
            query_strategy="entity",
        )
        assert SourceBinding.from_dict(binding.to_dict()) == binding

    def test_designer_threads_strategy_into_supplemental(
            self, symphony):
        games = symphony.web.entities["video_games"][:1]
        reviews = symphony.add_web_source("Reviews", "web")
        account = symphony.register_designer("Ann")
        rows = f"title,producer\n{games[0]},Studio 0"
        symphony.upload_http(account, "inv.csv", rows.encode(),
                             "inventory", content_type="text/csv")
        inventory = symphony.add_proprietary_source(
            account, "inventory", ("title",))
        session = symphony.designer().new_application(
            "App", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(inventory.source_id)
        session.add_text(slot, "title")
        child = session.drag_source_onto_result_layout(
            slot, reviews.source_id, drive_fields=("title",),
            query_suffix="review", query_strategy="entity",
        )
        app = session.build()
        assert app.binding(child.binding_id).query_strategy == "entity"
        app_id = symphony.host(app)
        response = symphony.query(app_id, games[0])
        assert response.views

    def test_derive_query_applies_strategy(self):
        from repro.core.runtime import SymphonyRuntime
        from repro.core.datasources import SourceItem
        item = SourceItem(item_id="1", title="Halo Odyssey",
                          fields={"title": "Halo Odyssey"})
        plain = SourceBinding(
            binding_id="b", source_id="s",
            role=SourceRole.SUPPLEMENTAL, drive_fields=("title",),
            query_suffix="review",
        )
        assert SymphonyRuntime._derive_query(plain, item) \
            == '"Halo Odyssey" review'
        entity = SourceBinding(
            binding_id="b", source_id="s",
            role=SourceRole.SUPPLEMENTAL, drive_fields=("title",),
            query_suffix="review", query_strategy="entity",
        )
        assert SymphonyRuntime._derive_query(entity, item) \
            == '"halo odyssey" review'
        assert SymphonyRuntime._derive_query(
            entity, item, with_suffix=False) == '"halo odyssey"'


class TestCli:
    def test_federation_command(self, capsys):
        from repro.cli import main
        assert main(["--seed", "11", "federation",
                     "--queries", "3"]) == 0
        out = capsys.readouterr().out
        assert "fusion methods" in out
        assert "query-generator strategies" in out
        assert "rrf" in out and "keyword" in out
