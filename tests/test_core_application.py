"""Tests for the declarative application definition model."""

import json

import pytest

from repro.core.application import (
    ApplicationDefinition,
    ElementKind,
    LayoutElement,
    ResultLayout,
    SourceBinding,
    SourceRole,
    SourceSlot,
)
from repro.errors import ConfigurationError, ValidationError


def primary_binding(binding_id="b1", source_id="s1", **kw):
    return SourceBinding(binding_id=binding_id, source_id=source_id,
                         role=SourceRole.PRIMARY, **kw)


def supplemental_binding(binding_id="b2", source_id="s2",
                         drive_fields=("title",), **kw):
    return SourceBinding(binding_id=binding_id, source_id=source_id,
                         role=SourceRole.SUPPLEMENTAL,
                         drive_fields=drive_fields, **kw)


def make_app(**overrides):
    layout = ResultLayout((
        LayoutElement(ElementKind.HYPERLINK, "title",
                      href_field="detail_url"),
        LayoutElement(ElementKind.IMAGE, "image_url"),
        LayoutElement(ElementKind.TEXT, "description",
                      style={"color": "#444"}),
    ))
    slots = (SourceSlot(
        binding_id="b1", heading="Games", result_layout=layout,
        children=(SourceSlot(binding_id="b2", heading="Reviews"),),
    ),)
    fields = dict(
        app_id="app-1", name="GamerQueen", owner_tenant="tenant-1",
        bindings=(primary_binding(), supplemental_binding()),
        slots=slots,
    )
    fields.update(overrides)
    return ApplicationDefinition(**fields)


class TestBindings:
    def test_supplemental_requires_drive_fields(self):
        with pytest.raises(ValidationError):
            SourceBinding("b", "s", SourceRole.SUPPLEMENTAL)

    def test_max_results_positive(self):
        with pytest.raises(ValidationError):
            SourceBinding("b", "s", SourceRole.PRIMARY, max_results=0)

    def test_roundtrip(self):
        binding = supplemental_binding(query_suffix="review",
                                       max_results=3)
        assert SourceBinding.from_dict(binding.to_dict()) == binding


class TestValidation:
    def test_valid_app_passes(self):
        make_app().validate()

    def test_missing_primary_rejected(self):
        app = make_app(
            bindings=(supplemental_binding(),),
            slots=(SourceSlot(binding_id="b2"),),
        )
        with pytest.raises(ConfigurationError, match="primary"):
            app.validate()

    def test_slot_referencing_unknown_binding(self):
        app = make_app(slots=(SourceSlot(binding_id="ghost"),))
        with pytest.raises(ConfigurationError):
            app.validate()

    def test_duplicate_binding_ids(self):
        app = make_app(bindings=(primary_binding(),
                                 primary_binding()))
        with pytest.raises(ConfigurationError, match="duplicate"):
            app.validate()

    def test_primary_without_slot_rejected(self):
        app = make_app(
            bindings=(primary_binding(),
                      primary_binding(binding_id="b9", source_id="s9")),
            slots=(SourceSlot(binding_id="b1"),),
        )
        with pytest.raises(ConfigurationError, match="top-level"):
            app.validate()

    def test_nested_slot_must_be_supplemental(self):
        # b2 exists but is an ads binding; nesting it under b1 is invalid.
        ads = SourceBinding("b2", "s2", SourceRole.ADS)
        app = make_app(bindings=(primary_binding(), ads))
        with pytest.raises(ConfigurationError, match="supplemental"):
            app.validate()

    def test_binding_lookup(self):
        app = make_app()
        assert app.binding("b1").role == SourceRole.PRIMARY
        with pytest.raises(ConfigurationError):
            app.binding("missing")

    def test_bindings_by_role(self):
        app = make_app()
        assert [b.binding_id
                for b in app.bindings_by_role(SourceRole.PRIMARY)] == \
            ["b1"]


class TestSlots:
    def test_walk_depth_first(self):
        app = make_app()
        ids = [slot.binding_id for slot in app.all_slots()]
        assert ids == ["b1", "b2"]

    def test_slot_roundtrip(self):
        slot = make_app().slots[0]
        assert SourceSlot.from_dict(slot.to_dict()) == slot


class TestSerialization:
    def test_full_json_roundtrip(self):
        app = make_app(theme="midnight",
                       settings={"results_per_page": 10},
                       description="video game store")
        payload = json.dumps(app.to_dict())
        restored = ApplicationDefinition.from_dict(json.loads(payload))
        assert restored == app

    def test_element_style_preserved(self):
        app = make_app()
        restored = ApplicationDefinition.from_dict(app.to_dict())
        text_element = restored.slots[0].result_layout.elements[2]
        assert text_element.style == {"color": "#444"}

    def test_element_roundtrip_all_kinds(self):
        for kind in ElementKind:
            element = LayoutElement(kind, "f", href_field="h",
                                    css_class="c", style={"x": "y"})
            assert LayoutElement.from_dict(element.to_dict()) == element
