"""repro.durability: WAL, checkpoints, crash-faithful loss, repair.

Covers the durability contract end to end — append-before-apply LSN
ordering, blob round-trips, idempotent replay (property-tested under
double/overlapping delivery), checkpoint-bounded recovery, crashed
replicas genuinely missing writes and never serving reads until the
digest-verified rejoin — plus the regression fixes that rode along:
kill/revive disarming chaos injections and revive resetting the
hedge-latency learning.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.cluster.replica import ReplicaGroup, ShardReplica
from repro.core.platform import Symphony
from repro.durability import (
    BlobWalStorage,
    DurabilityConfig,
    MemoryWalStorage,
    WriteAheadLog,
    content_digest,
    replay,
    restore_checkpoint,
    take_checkpoint,
)
from repro.errors import ConfigurationError, DurabilityError
from repro.searchengine.documents import FieldedDocument
from repro.searchengine.engine import Vertical, make_vertical_indexes
from repro.util import SimClock


def make_doc(number: int, token: str = "durable") -> FieldedDocument:
    return FieldedDocument(
        f"{token}-doc-{number}",
        {"title": f"{token} title {number}",
         "url": f"http://{token}.example/{number}"},
        None,
    )


def fresh_replica(shard_id: int = 0, index: int = 0) -> ShardReplica:
    return ShardReplica(shard_id, index, make_vertical_indexes({}))


def doc_total(replica: ShardReplica) -> int:
    return sum(len(v.index) for v in replica.verticals.values())


@pytest.fixture()
def platform(tiny_web):
    """A 2x2 clustered, telemetry-on, durability-on deployment."""
    return Symphony(
        web=tiny_web, use_authority=False,
        cluster=ClusterConfig(num_shards=2, replicas_per_shard=2),
        telemetry=True,
        durability=DurabilityConfig(checkpoint_every=16),
    )


# -- write-ahead log ----------------------------------------------------------


class TestWriteAheadLog:
    def test_lsn_monotonic_per_shard_stamped_off_clock(self):
        clock = SimClock()
        base = clock.now_ms
        wal = WriteAheadLog(clock=clock)
        clock.advance(5.0)
        first = wal.append(0, "add", Vertical.WEB, document=make_doc(1))
        clock.advance(7.0)
        second = wal.append(0, "remove", Vertical.WEB,
                            doc_id="durable-doc-1")
        other = wal.append(3, "add", Vertical.WEB, document=make_doc(2))
        assert (first.lsn, second.lsn) == (1, 2)
        assert other.lsn == 1              # per-shard sequences
        assert first.at_ms - base == 5 and second.at_ms - base == 12
        assert wal.last_lsn(0) == 2 and wal.last_lsn(3) == 1
        assert wal.last_lsn(9) == 0        # untouched shard

    def test_append_happens_before_apply_on_engine_writes(self, platform):
        engine = platform.engine
        wal = platform.durability.wal
        doc = make_doc(77, "ordering")
        shard = engine.router.snapshot().shard_of(doc.doc_id)
        engine.add_document(Vertical.WEB, doc)
        tail = wal.tail(shard)
        assert tail and tail[-1].doc_id == doc.doc_id
        for replica in engine.groups[shard].replicas:
            # The applying replica stamped exactly the appended LSN.
            assert replica.applied_lsn == tail[-1].lsn

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            WriteAheadLog().append(0, "upsert", Vertical.WEB,
                                   document=make_doc(0))

    def test_blob_storage_round_trips_records(self):
        wal = WriteAheadLog(storage=BlobWalStorage())
        wal.append(0, "add", Vertical.WEB, document=make_doc(5))
        wal.append(0, "remove", Vertical.NEWS, doc_id="gone")
        records = wal.tail(0)
        assert [r.lsn for r in records] == [1, 2]
        assert records[0].fields == make_doc(5).fields
        assert records[0].payload is None   # payloads don't serialize
        assert (records[1].op, records[1].vertical,
                records[1].doc_id) == ("remove", "news", "gone")
        assert wal.truncate(0, 1) == 1
        assert [r.lsn for r in wal.tail(0)] == [2]

    def test_memory_truncate_drops_covered_prefix(self):
        wal = WriteAheadLog(storage=MemoryWalStorage())
        for number in range(6):
            wal.append(0, "add", Vertical.WEB, document=make_doc(number))
        assert wal.truncate(0, 4) == 4
        assert [r.lsn for r in wal.tail(0)] == [5, 6]
        assert wal.last_lsn(0) == 6        # head survives truncation


# -- replay idempotence -------------------------------------------------------


ops_strategy = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]),
              st.integers(min_value=0, max_value=5)),
    min_size=1, max_size=40,
)


class TestReplayIdempotence:
    @staticmethod
    def build_log(ops) -> WriteAheadLog:
        wal = WriteAheadLog()
        for op, number in ops:
            if op == "add":
                wal.append(0, "add", Vertical.WEB,
                           document=make_doc(number))
            else:
                wal.append(0, "remove", Vertical.WEB,
                           doc_id=f"durable-doc-{number}")
        return wal

    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy,
           split=st.integers(min_value=0, max_value=40))
    def test_double_and_overlapping_replay_converge(self, ops, split):
        """Replaying a prefix, then the whole log, then the whole log
        again yields exactly the single-replay state."""
        wal = self.build_log(ops)
        records = wal.tail(0)
        once = fresh_replica()
        assert replay(records, once) == len(records)
        twice = fresh_replica()
        prefix = records[:min(split, len(records))]
        replay(prefix, twice)            # partial delivery...
        replay(records, twice)           # ...then the full tail...
        applied_again = replay(records, twice)   # ...delivered again
        assert applied_again == 0        # everything already applied
        assert content_digest(once) == content_digest(twice)
        assert once.applied_lsn == twice.applied_lsn == len(records)

    @settings(max_examples=30, deadline=None)
    @given(ops=ops_strategy)
    def test_replay_matches_direct_application(self, ops):
        """The WAL is a faithful account: replaying it reproduces the
        state of a replica that applied every op directly."""
        wal = self.build_log(ops)
        direct = fresh_replica()
        for op, number in ops:
            if op == "add":
                direct.vertical("web").index.upsert(make_doc(number))
            else:
                index = direct.vertical("web").index
                if f"durable-doc-{number}" in index:
                    index.remove(f"durable-doc-{number}")
        replayed = fresh_replica()
        replay(wal.tail(0), replayed)
        assert content_digest(direct) == content_digest(replayed)


# -- checkpoints --------------------------------------------------------------


class TestCheckpoints:
    def test_take_restore_round_trip(self):
        clock = SimClock()
        base = clock.now_ms
        source = fresh_replica()
        for number in range(8):
            source.vertical("web").index.upsert(make_doc(number))
        source.applied_lsn = 8
        clock.advance(100)
        checkpoint = take_checkpoint(source, clock=clock)
        assert checkpoint.doc_count == 8
        assert checkpoint.applied_lsn == 8
        assert checkpoint.taken_at_ms - base == 100
        target = fresh_replica(index=1)
        assert restore_checkpoint(target, checkpoint) == 8
        assert target.applied_lsn == 8
        assert content_digest(target) == content_digest(source)

    def test_snapshot_does_not_alias_live_state(self):
        source = fresh_replica()
        source.vertical("web").index.upsert(make_doc(0))
        checkpoint = take_checkpoint(source)
        source.vertical("web").index.remove("durable-doc-0")
        target = fresh_replica(index=1)
        restore_checkpoint(target, checkpoint)
        assert "durable-doc-0" in target.vertical("web").index

    def test_auto_checkpoint_cadence_bounds_replay(self, platform):
        durability = platform.durability
        engine = platform.engine
        for number in range(80):
            engine.add_document(Vertical.WEB,
                                make_doc(number, "cadence"))
        for group in engine.groups:
            shard = group.shard_id
            checkpoint = durability.checkpoints.latest(shard)
            lag = durability.wal.last_lsn(shard) - checkpoint.applied_lsn
            # Never more than one cadence-worth of tail past the newest
            # checkpoint (the baseline alone would leave the full log).
            assert 0 <= lag < durability.config.checkpoint_every


# -- crash semantics ----------------------------------------------------------


class TestCrashSemantics:
    def test_crashed_replica_misses_broadcasts_and_is_counted(self):
        group = ReplicaGroup(0, [fresh_replica(0, 0),
                                 fresh_replica(0, 1)])
        group.replicas[1].crash()
        group.broadcast(lambda r: r.vertical("web").index
                        .upsert(make_doc(1)))
        assert doc_total(group.replicas[0]) == 1
        assert doc_total(group.replicas[1]) == 0
        assert group.replicas[1].writes_missed == 1

    def test_killed_replica_still_applies_writes(self):
        group = ReplicaGroup(0, [fresh_replica(0, 0),
                                 fresh_replica(0, 1)])
        group.kill(1)
        group.broadcast(lambda r: r.vertical("web").index
                        .upsert(make_doc(1)))
        assert doc_total(group.replicas[1]) == 1
        assert group.replicas[1].writes_missed == 0

    def test_crash_wipes_state_and_revive_cannot_resurrect(self):
        replica = fresh_replica()
        replica.vertical("web").index.upsert(make_doc(1))
        replica.applied_lsn = 1
        replica.crash()
        assert doc_total(replica) == 0
        assert replica.applied_lsn == 0
        assert not replica.healthy
        replica.revive()                 # flap harness hits this path
        assert not replica.healthy       # still down: state is gone
        replica.rejoin()
        assert replica.healthy and not replica.crashed

    def test_primary_skips_crashed_replicas(self):
        group = ReplicaGroup(0, [fresh_replica(0, 0),
                                 fresh_replica(0, 1)])
        group.replicas[0].crash()
        assert group.primary() is group.replicas[1]


# -- recovery -----------------------------------------------------------------


class TestRecovery:
    def crash_and_write(self, platform, shard=0, replica_index=1,
                        docs=24):
        engine = platform.engine
        platform.durability.crash_replica(shard, replica_index)
        for number in range(docs):
            engine.add_document(Vertical.WEB,
                                make_doc(number, "postcrash"))
        return engine.groups[shard].replicas[replica_index]

    def test_full_cycle_converges_and_rejoins(self, platform):
        replica = self.crash_and_write(platform)
        reads_before = replica.reads_served
        for __ in range(4):              # storm of reads while down
            platform.engine.search("web", "postcrash title")
        assert replica.reads_served == reads_before
        assert replica.writes_missed > 0
        report = platform.durability.recover_replica(0, 1)
        assert report.converged and report.digest_match is True
        assert report.records_replayed > 0
        assert report.docs_restored > 0   # baseline checkpoint kicked in
        assert replica.healthy and not replica.crashed
        assert replica.writes_missed == 0
        peer = platform.engine.groups[0].replicas[0]
        assert content_digest(peer) == content_digest(replica)

    def test_recovery_emits_events_and_metrics(self, platform):
        self.crash_and_write(platform)
        platform.durability.recover_replica(0, 1)
        events = platform.telemetry.events
        assert events.by_kind("replica.crashed")
        assert events.by_kind("recovery.started")
        assert events.by_kind("recovery.completed")
        metrics = platform.telemetry.metrics
        assert metrics.counter("durability_recoveries_total").value == 1
        assert metrics.counter("replica_writes_missed_total",
                               shard="0",
                               replica="shard-0/replica-1").value > 0

    def test_catch_up_charged_to_sim_clock(self, platform):
        self.crash_and_write(platform)
        before = platform.clock.now_ms
        report = platform.durability.recover_replica(0, 1)
        assert platform.clock.now_ms - before == int(report.catch_up_ms) \
            or platform.clock.now_ms > before

    def test_divergence_keeps_replica_out_of_rotation(self, platform):
        replica = self.crash_and_write(platform, docs=6)
        # Corrupt the healthy peer behind the WAL's back: replay will
        # converge to the logged state, which now disagrees.
        peer = platform.engine.groups[0].replicas[0]
        peer.vertical("web").index.upsert(make_doc(999, "phantom"))
        with pytest.raises(DurabilityError):
            platform.durability.recover_replica(0, 1)
        assert not replica.healthy
        assert replica.crashed and replica.recovering
        assert platform.telemetry.events.by_kind("recovery.diverged")

    def test_recover_requires_a_crash(self, platform):
        with pytest.raises(DurabilityError):
            platform.durability.recover_replica(0, 1)

    def test_recovery_lag_visible_in_status(self, platform):
        self.crash_and_write(platform, docs=10)
        status = platform.durability.status()
        assert status["max_lag_records"] > 0
        down = status["shards"][0]["replicas"][1]
        assert down["crashed"] and down["writes_missed"] > 0
        platform.durability.recover_replica(0, 1)
        assert platform.durability.status()["max_lag_records"] == 0


# -- ingest-during-crash equivalence ------------------------------------------


class TestIngestEquivalence:
    GOLDEN = ("equivalence title", "postcrash", "durable")

    @staticmethod
    def build(tiny_web):
        return Symphony(
            web=tiny_web, use_authority=False,
            cluster=ClusterConfig(num_shards=2, replicas_per_shard=2),
            durability=True,
        )

    @staticmethod
    def ingest(engine, start, count, token="equivalence"):
        for number in range(start, start + count):
            engine.add_document(Vertical.WEB, make_doc(number, token))

    def test_crash_mid_stream_yields_identical_results(self, tiny_web):
        """A crash + recovery in the middle of an ingest stream is
        invisible: every golden query answers exactly as on a platform
        that never crashed."""
        clean = self.build(tiny_web)
        self.ingest(clean.engine, 0, 40)

        crashed = self.build(tiny_web)
        self.ingest(crashed.engine, 0, 15)
        crashed.durability.crash_replica(0, 1)
        crashed.durability.crash_replica(1, 0)
        self.ingest(crashed.engine, 15, 25)   # both shards miss writes
        crashed.durability.recover_replica(0, 1)
        crashed.durability.recover_replica(1, 0)

        for query in self.GOLDEN:
            baseline = clean.engine.search("web", query)
            answer = crashed.engine.search("web", query)
            assert ([(r.url, round(r.score, 9))
                     for r in baseline.results]
                    == [(r.url, round(r.score, 9))
                        for r in answer.results]), query
            assert baseline.total_matches == answer.total_matches
        # Stronger than query equality: every replica pair agrees.
        for clean_group, crashed_group in zip(clean.engine.groups,
                                              crashed.engine.groups):
            expected = content_digest(clean_group.replicas[0])
            for replica in crashed_group.replicas:
                assert content_digest(replica) == expected


# -- satellite regressions ----------------------------------------------------


class TestInjectionClearing:
    def test_kill_disarms_pending_faults_and_delays(self):
        replica = fresh_replica()
        replica.inject_fault(count=3)
        replica.inject_latency(50.0, count=2)
        replica.kill()
        replica.revive()
        replica._check_fault()           # armed fault would raise here
        assert replica.take_latency_ms() == 0.0

    def test_revive_alone_disarms_injections(self):
        replica = fresh_replica()
        replica.inject_fault()
        replica.revive()
        replica._check_fault()

    def test_injections_fire_when_not_flapped(self):
        replica = fresh_replica()
        replica.inject_fault()
        with pytest.raises(Exception):
            replica._check_fault()


class TestHedgeLearningReset:
    @staticmethod
    def group_with_histogram():
        from repro.telemetry.metrics import Histogram
        group = ReplicaGroup(0, [fresh_replica(0, 0),
                                 fresh_replica(0, 1)])
        group.latency_histogram = Histogram(
            "replica_attempt_ms", labels=(("shard", "0"),))
        return group

    def test_revive_restarts_latency_learning(self):
        group = self.group_with_histogram()
        for value in (5.0, 900.0, 950.0):    # poisoned by a bad period
            group.latency_histogram.observe(value)
        group.kill(1)
        group.revive(1)
        assert group.latency_histogram.summary()["count"] == 0

    def test_membership_changes_still_reset(self):
        group = self.group_with_histogram()
        group.latency_histogram.observe(10.0)
        group.add_replica(fresh_replica(0, 2))
        assert group.latency_histogram.summary()["count"] == 0


# -- reshard interplay --------------------------------------------------------


class TestReshardCrashInterplay:
    def test_split_survives_donor_replica_crash_mid_handoff(self,
                                                            tiny_web):
        platform = Symphony(
            web=tiny_web, use_authority=False,
            cluster=ClusterConfig(num_shards=2, replicas_per_shard=2),
            telemetry=True, controlplane=True, durability=True,
        )
        engine = platform.engine
        baseline = engine.search("web", "news")
        before = [(r.url, r.title) for r in baseline.results]
        migration = platform.controlplane.begin_split(0)
        platform.controlplane.step()            # first COPY batch
        platform.durability.crash_replica(0, 0)  # donor primary dies
        platform.controlplane.run()
        assert migration.state == "complete"
        report = platform.durability.recover_replica(0, 0)
        assert report.converged
        after = engine.search("web", "news")
        assert [(r.url, r.title) for r in after.results] == before
        assert after.total_matches == baseline.total_matches


# -- platform wiring ----------------------------------------------------------


class TestPlatformWiring:
    def test_requires_cluster(self, tiny_web):
        with pytest.raises(ConfigurationError):
            Symphony(web=tiny_web, durability=True)

    def test_null_object_default(self, symphony):
        assert not symphony.durability.enabled
        with pytest.raises(ConfigurationError):
            symphony.durability.crash_replica(0, 0)
        assert symphony.durability.status() == {"enabled": False}

    def test_config_selects_blob_storage(self, tiny_web):
        platform = Symphony(
            web=tiny_web, use_authority=False,
            cluster=ClusterConfig(num_shards=2, replicas_per_shard=2),
            durability=DurabilityConfig(storage="blob"),
        )
        platform.engine.add_document(Vertical.WEB, make_doc(1, "blob"))
        shard = platform.engine.router.snapshot() \
            .shard_of("blob-doc-1")
        assert platform.durability.wal.record_count(shard) == 1

    def test_unknown_storage_rejected(self):
        with pytest.raises(ConfigurationError):
            DurabilityConfig(storage="tape").build_storage()


# -- chaos plan ---------------------------------------------------------------


class TestChaosPlan:
    def test_crash_recovery_plan_parses(self):
        from repro.resilience.chaos import load_fault_plan
        plan = load_fault_plan("examples/crash_recovery_plan.json")
        assert plan.durability["expect_digest_match"] is True
        assert len(plan.durability["crashes"]) == 2
        assert any(step.get("during_reshard")
                   for step in plan.durability["crashes"])
