"""Tests for tokenization, stopwords, and the Porter stemmer."""

from hypothesis import given, strategies as st

from repro.searchengine.analysis import (
    Analyzer,
    PorterStemmer,
    STOPWORDS,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Halo: Combat Evolved") == \
            ["halo", "combat", "evolved"]

    def test_numbers_kept(self):
        assert tokenize("Top 10 games of 2009") == \
            ["top", "10", "games", "of", "2009"]

    def test_apostrophes_stay_in_token(self):
        assert tokenize("Ann's store") == ["ann's", "store"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!! ---") == []

    @given(st.text(max_size=100))
    def test_tokens_are_lowercase(self, text):
        for token in tokenize(text):
            assert token == token.lower()


class TestPorterStemmer:
    # Canonical examples from Porter's paper.
    CASES = {
        "caresses": "caress",
        "ponies": "poni",
        "ties": "ti",
        "caress": "caress",
        "cats": "cat",
        "feed": "feed",
        "agreed": "agre",
        "plastered": "plaster",
        "motoring": "motor",
        "sing": "sing",
        "conflated": "conflat",
        "troubling": "troubl",
        "sized": "size",
        "hopping": "hop",
        "falling": "fall",
        "hissing": "hiss",
        "fizzed": "fizz",
        "happy": "happi",
        "relational": "relat",
        "conditional": "condit",
        "rational": "ration",
        "digitizer": "digit",
        "operator": "oper",
        "feudalism": "feudal",
        "hopefulness": "hope",
        "formaliti": "formal",
        "triplicate": "triplic",
        "formative": "form",
        "formalize": "formal",
        "electrical": "electr",
        "hopeful": "hope",
        "goodness": "good",
        "revival": "reviv",
        "allowance": "allow",
        "inference": "infer",
        "adjustment": "adjust",
        "dependent": "depend",
        "adoption": "adopt",
        "irritant": "irrit",
        "bowdlerize": "bowdler",
        "probate": "probat",
        "controll": "control",
        "roll": "roll",
    }

    def test_known_cases(self):
        stemmer = PorterStemmer()
        failures = {
            word: (stemmer.stem(word), expected)
            for word, expected in self.CASES.items()
            if stemmer.stem(word) != expected
        }
        assert not failures

    def test_short_words_untouched(self):
        stemmer = PorterStemmer()
        for word in ("a", "is", "by"):
            assert stemmer.stem(word) == word

    def test_morphological_variants_collapse(self):
        stemmer = PorterStemmer()
        stems = {stemmer.stem(w)
                 for w in ("review", "reviews", "reviewing", "reviewed")}
        assert len(stems) == 1

    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"),
                   min_size=1, max_size=20))
    def test_idempotent_on_own_output_never_grows(self, word):
        stemmer = PorterStemmer()
        stemmed = stemmer.stem(word)
        assert len(stemmed) <= len(word)
        assert stemmed  # never empties a word


class TestAnalyzer:
    def test_pipeline(self):
        analyzer = Analyzer()
        assert analyzer.analyze("The latest reviews of the games") == \
            ["latest", "review", "game"]

    def test_stopwords_disabled(self):
        analyzer = Analyzer(use_stopwords=False)
        assert "the" in analyzer.analyze("the game")

    def test_stemming_disabled(self):
        analyzer = Analyzer(use_stemming=False)
        assert analyzer.analyze("reviews games") == ["reviews", "games"]

    def test_positions_skip_stopwords_but_keep_indices(self):
        analyzer = Analyzer()
        pairs = analyzer.analyze_with_positions("the game of the year")
        # tokens: the(0) game(1) of(2) the(3) year(4)
        assert pairs == [("game", 1), ("year", 4)]

    def test_stopword_set_is_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)
