"""Property tests for rank fusion (ISSUE 7 satellite).

Hypothesis-driven invariants over :mod:`repro.federation.fusion`:
permutation invariance of input order, deterministic tie-breaking,
duplicate-URL dedup keeping the best-ranked copy, and single-backend
equivalence (RRF reproduces the lone backend's ordering exactly).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.federation.fusion import (
    FUSION_METHODS,
    FederatedItem,
    comb_mnz,
    comb_sum,
    fuse,
)

import pytest


def _items(backend_id, pairs):
    """Ranked FederatedItems for (url, score) pairs, ranks 1..n."""
    return [
        FederatedItem(url=url, title=url, score=score,
                      backend_id=backend_id, rank=rank)
        for rank, (url, score) in enumerate(pairs, start=1)
    ]


urls = st.integers(min_value=0, max_value=24).map(
    lambda i: f"http://site{i % 5}.example/page-{i}"
)
pairs = st.lists(
    st.tuples(urls, st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False)),
    min_size=0, max_size=12,
)
backend_lists = st.dictionaries(
    keys=st.sampled_from(["alpha", "beta", "gamma", "delta"]),
    values=pairs,
    min_size=1, max_size=4,
).map(lambda d: {bid: _items(bid, p) for bid, p in d.items()})


class TestPermutationInvariance:
    @given(lists=backend_lists,
           method=st.sampled_from(FUSION_METHODS))
    @settings(max_examples=120, deadline=None)
    def test_backend_insertion_order_is_irrelevant(self, lists,
                                                   method):
        forward = fuse(lists, method=method)
        reversed_insertion = fuse(
            dict(reversed(list(lists.items()))), method=method
        )
        assert forward == reversed_insertion

    @given(lists=backend_lists)
    @settings(max_examples=80, deadline=None)
    def test_rrf_fusion_is_pure(self, lists):
        assert fuse(lists) == fuse(lists)


class TestDeterministicTieBreaking:
    @given(lists=backend_lists,
           method=st.sampled_from(FUSION_METHODS))
    @settings(max_examples=120, deadline=None)
    def test_equal_scores_order_by_url(self, lists, method):
        fused = fuse(lists, method=method)
        for first, second in zip(fused, fused[1:]):
            assert first.fused_score >= second.fused_score
            if first.fused_score == second.fused_score:
                assert first.url < second.url


class TestDedup:
    @given(lists=backend_lists)
    @settings(max_examples=120, deadline=None)
    def test_each_url_appears_once(self, lists):
        fused = fuse(lists)
        fused_urls = [item.url for item in fused]
        assert len(fused_urls) == len(set(fused_urls))
        all_urls = {item.url
                    for items in lists.values() for item in items}
        assert set(fused_urls) == all_urls

    @given(lists=backend_lists)
    @settings(max_examples=120, deadline=None)
    def test_kept_copy_is_best_ranked(self, lists):
        fused = fuse(lists)
        for item in fused:
            copies = [
                (candidate.rank, candidate.backend_id)
                for items in lists.values() for candidate in items
                if candidate.url == item.url
            ]
            assert (item.best.rank, item.best.backend_id) \
                == min(copies)

    def test_within_backend_duplicate_keeps_lowest_rank(self):
        url = "http://site0.example/dup"
        lists = {"alpha": _items("alpha", [(url, 1.0),
                                           ("http://o.example/x", 2.0),
                                           (url, 9.0)])}
        fused = fuse(lists)
        kept = next(item for item in fused if item.url == url)
        assert kept.best.rank == 1


class TestSingleBackendEquivalence:
    @given(items=pairs)
    @settings(max_examples=120, deadline=None)
    def test_rrf_preserves_the_lone_backend_order(self, items):
        lists = {"solo": _items("solo", items)}
        fused = fuse(lists, method="rrf")
        # What fusion should reproduce: the backend's own ordering
        # after URL dedup (first == best-ranked occurrence wins).
        expected = []
        seen = set()
        for item in lists["solo"]:
            if item.url not in seen:
                seen.add(item.url)
                expected.append(item.url)
        assert [item.url for item in fused] == expected

    @given(items=pairs)
    @settings(max_examples=60, deadline=None)
    def test_every_method_returns_the_same_url_set(self, items):
        lists = {"solo": _items("solo", items)}
        by_method = {method: {i.url for i in fuse(lists, method=method)}
                     for method in FUSION_METHODS}
        assert by_method["rrf"] == by_method["combsum"] \
            == by_method["combmnz"]


class TestCombMethods:
    @given(lists=backend_lists)
    @settings(max_examples=80, deadline=None)
    def test_combmnz_is_combsum_scaled_by_occurrences(self, lists):
        sums = comb_sum(lists)
        mnz = comb_mnz(lists)
        occurrences = {}
        for items in lists.values():
            for url in {item.url for item in items}:
                occurrences[url] = occurrences.get(url, 0) + 1
        for url, value in mnz.items():
            assert value == pytest.approx(
                sums[url] * occurrences[url]
            )

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            fuse({}, method="borda")
