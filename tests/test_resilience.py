"""Tests for repro.resilience: deadlines, retry, hedging, chaos."""

import json
from dataclasses import replace

import pytest

from repro.errors import (
    DeadlineExceededError,
    NotFoundError,
    ReplicaFaultError,
    RetryExhaustedError,
    ServiceError,
    ServiceFaultError,
    ShardUnavailableError,
    TransportError,
    ValidationError,
    retryable,
)
from repro.resilience import (
    Deadline,
    HedgePolicy,
    ResilienceConfig,
    Retrier,
    RetryPolicy,
)
from repro.util import SimClock


class TestDeadline:
    def test_countdown_and_expiry(self):
        clock = SimClock(start_ms=0)
        deadline = Deadline(clock, 100)
        assert deadline.remaining_ms() == 100
        assert not deadline.expired
        clock.advance(99)
        assert not deadline.expired
        clock.advance(1)
        assert deadline.expired
        assert deadline.overshoot_ms() == 0
        clock.advance(40)
        assert deadline.overshoot_ms() == 40

    def test_check_raises_with_context(self):
        clock = SimClock(start_ms=0)
        deadline = Deadline(clock, 50)
        deadline.check("stage:x")  # within budget: no-op
        clock.advance(80)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("stage:x")
        assert "stage:x" in str(excinfo.value)
        assert "overshoot 30ms" in str(excinfo.value)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(SimClock(), 0)
        with pytest.raises(ValueError):
            Deadline(SimClock(), -5)

    def test_wall_budget_optional(self):
        deadline = Deadline(SimClock(), 100)
        assert deadline.remaining_wall_s() is None
        walled = Deadline(SimClock(), 100, wall_budget_s=60.0)
        assert walled.remaining_wall_s() > 0


class TestRetryableClassification:
    def test_transient_provider_failures_retry(self):
        assert retryable(TransportError("reset"))
        assert retryable(ServiceError("outage"))
        assert retryable(ReplicaFaultError("replica died"))
        assert retryable(ShardUnavailableError("shard dark"))
        assert retryable(TimeoutError("slow"))

    def test_soap_faults_split_by_blame(self):
        assert retryable(ServiceFaultError("Server.Overloaded", "busy"))
        assert not retryable(ServiceFaultError("Client.BadInput", "no"))

    def test_terminal_errors_do_not_retry(self):
        assert not retryable(DeadlineExceededError("late"))
        assert not retryable(
            RetryExhaustedError(3, ServiceError("down"))
        )
        assert not retryable(NotFoundError("missing"))
        assert not retryable(ValidationError("bad"))


class TestRetryPolicyDeterminism:
    def test_schedule_is_bit_for_bit_reproducible(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        again = RetryPolicy(max_attempts=5, seed=42)
        assert policy.schedule("source-1") == again.schedule("source-1")
        assert policy.schedule(("src", "query")) \
            == again.schedule(("src", "query"))

    def test_seed_and_key_decorrelate(self):
        policy = RetryPolicy(max_attempts=4, seed=1)
        assert policy.schedule("a") != policy.schedule("b")
        assert policy.schedule("a") \
            != RetryPolicy(max_attempts=4, seed=2).schedule("a")

    def test_no_jitter_is_pure_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_ms=10,
                             multiplier=2.0, jitter=0.0)
        assert policy.schedule("k") == (10.0, 20.0, 40.0)

    def test_backoff_capped_and_jitter_bounded(self):
        policy = RetryPolicy(max_attempts=8, base_backoff_ms=50,
                             multiplier=3.0, max_backoff_ms=200,
                             jitter=0.5, seed=9)
        for attempt, backoff in enumerate(policy.schedule("k"), start=1):
            raw = min(200.0, 50.0 * 3.0 ** (attempt - 1))
            assert 0.5 * raw <= backoff <= 1.5 * raw


class TestRetrier:
    def test_success_needs_no_retry(self):
        clock = SimClock(start_ms=0)
        retrier = Retrier(clock, RetryPolicy(max_attempts=3))
        assert retrier.call(lambda: "ok", key="k") == "ok"
        assert clock.now_ms == 0

    def test_backoff_charged_to_sim_clock(self):
        clock = SimClock(start_ms=0)
        policy = RetryPolicy(max_attempts=3, base_backoff_ms=10,
                             jitter=0.0)
        retrier = Retrier(clock, policy)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ServiceError("outage")
            return "recovered"

        assert retrier.call(flaky, key="k") == "recovered"
        assert len(attempts) == 3
        assert clock.now_ms == 10 + 20  # the exact schedule

    def test_exhaustion_carries_attempts_and_cause(self):
        retrier = Retrier(SimClock(), RetryPolicy(max_attempts=2,
                                                  jitter=0.0))
        cause = ServiceError("still down")

        def always_down():
            raise cause

        with pytest.raises(RetryExhaustedError) as excinfo:
            retrier.call(always_down, key="k")
        assert excinfo.value.attempts == 2
        assert excinfo.value.cause is cause

    def test_non_retryable_raised_verbatim(self):
        retrier = Retrier(SimClock(), RetryPolicy(max_attempts=5))
        calls = []

        def bad_input():
            calls.append(1)
            raise ValidationError("your fault")

        with pytest.raises(ValidationError):
            retrier.call(bad_input, key="k")
        assert len(calls) == 1  # never retried

    def test_deadline_too_tight_for_backoff_aborts(self):
        clock = SimClock(start_ms=0)
        policy = RetryPolicy(max_attempts=5, base_backoff_ms=100,
                             jitter=0.0)
        retrier = Retrier(clock, policy)
        deadline = Deadline(clock, 50)  # cannot afford one 100ms backoff

        def down():
            raise ServiceError("outage")

        with pytest.raises(RetryExhaustedError) as excinfo:
            retrier.call(down, key="k", deadline=deadline)
        assert excinfo.value.attempts == 1
        assert clock.now_ms == 0  # no backoff was charged

    def test_on_error_hook_sees_every_attempt(self):
        retrier = Retrier(SimClock(), RetryPolicy(max_attempts=3,
                                                  jitter=0.0,
                                                  base_backoff_ms=1))
        seen = []

        def down():
            raise ServiceError("outage")

        with pytest.raises(RetryExhaustedError):
            retrier.call(down, key="k",
                         on_error=lambda exc, n: seen.append(n))
        assert seen == [1, 2, 3]


class TestHedgePolicy:
    def _histogram(self, samples):
        from repro.telemetry.metrics import Histogram
        histogram = Histogram("t")
        for sample in samples:
            histogram.observe(sample)
        return histogram

    def test_fallback_until_enough_observations(self):
        policy = HedgePolicy(min_observations=8,
                             fallback_threshold_ms=50.0)
        assert policy.threshold_ms(None) == 50.0
        assert policy.threshold_ms(self._histogram([1.0] * 7)) == 50.0

    def test_quantile_once_warm_with_floor(self):
        policy = HedgePolicy(latency_quantile=0.5, min_observations=4,
                             min_threshold_ms=1.0)
        warm = self._histogram([0.0] * 8)
        # All-zero latencies: the floor keeps the clean path unhedged.
        assert policy.threshold_ms(warm) == 1.0
        slow = self._histogram([100.0] * 8)
        assert policy.threshold_ms(slow) >= 1.0


class TestHedgedReplicaReads:
    def _group(self, policy):
        from repro.cluster.replica import ReplicaGroup, ShardReplica
        replicas = [ShardReplica(0, index, verticals={})
                    for index in range(2)]
        group = ReplicaGroup(0, replicas)
        group.enable_hedging(policy)
        return group, replicas

    def _warm(self, group, runs):
        for __ in range(runs):
            group.run(lambda replica: replica.replica_id)

    def test_hedge_win_serves_backup(self):
        policy = HedgePolicy(latency_quantile=0.5, min_observations=4,
                             min_threshold_ms=1.0)
        group, replicas = self._group(policy)
        self._warm(group, 4)  # rotation returns to replica 0
        replicas[0].inject_latency(30.0)
        result, meta = group.run_annotated(
            lambda replica: replica.replica_id
        )
        # Primary (replica 0) took 30ms against a ~1ms threshold; the
        # hedge on replica 1 at threshold+0ms finishes first and wins.
        assert meta["hedged"] and meta["hedge"] == "win"
        assert result == replicas[1].replica_id
        assert meta["latency_ms"] < 30.0
        assert meta["attempts"] == 2

    def test_hedge_lose_keeps_primary(self):
        policy = HedgePolicy(latency_quantile=0.5, min_observations=4,
                             min_threshold_ms=1.0)
        group, replicas = self._group(policy)
        self._warm(group, 4)
        replicas[0].inject_latency(30.0)
        replicas[1].inject_latency(500.0)  # backup even slower
        result, meta = group.run_annotated(
            lambda replica: replica.replica_id
        )
        assert meta["hedged"] and meta["hedge"] == "lose"
        assert result == replicas[0].replica_id
        assert meta["latency_ms"] == 30.0

    def test_clean_path_never_hedges(self):
        policy = HedgePolicy(latency_quantile=0.5, min_observations=4,
                             min_threshold_ms=1.0)
        group, __ = self._group(policy)
        self._warm(group, 8)
        __, meta = group.run_annotated(
            lambda replica: replica.replica_id
        )
        assert not meta["hedged"]
        assert meta["attempts"] == 1


class TestTransportNormalization:
    """REST and SOAP callers see one uniform provider-failure class."""

    class _RawBus:
        def invoke(self, name, operation, params, deadline=None):
            raise TransportError("connection reset by peer")

    def test_rest_client_wraps_transport_errors(self):
        from repro.services.rest import RestClient
        client = RestClient(self._RawBus(), "pricing")
        with pytest.raises(ServiceError) as excinfo:
            client.get("/prices/halo")
        assert "transport failure" in str(excinfo.value)

    def test_soap_client_wraps_transport_errors(self):
        from repro.services.soap import SoapClient
        client = SoapClient(self._RawBus(), "reviews")
        with pytest.raises(ServiceError) as excinfo:
            client.call("GetReviews", title="halo")
        assert "transport failure" in str(excinfo.value)

    def test_bus_wraps_handler_transport_errors(self):
        from repro.services.bus import ServiceBus
        from repro.services.rest import RestService

        class Flaky(RestService):
            name = "flaky"

            def __init__(self):
                super().__init__()
                self.route("GET /x", self._x)

            def _x(self, params):
                raise TransportError("socket closed mid-read")

        bus = ServiceBus(clock=SimClock())
        bus.register(Flaky())
        with pytest.raises(ServiceError) as excinfo:
            bus.invoke("flaky", "GET /x", {})
        assert not isinstance(excinfo.value, TransportError)
        assert bus.stats("flaky").failures == 1

    def test_bus_refuses_work_past_deadline(self):
        from repro.services.bus import ServiceBus
        from repro.services.samples import PricingService

        clock = SimClock(start_ms=0)
        bus = ServiceBus(clock=clock)
        bus.register(PricingService())
        deadline = Deadline(clock, 5)
        clock.advance(10)
        calls_before = bus.stats("pricing").calls
        with pytest.raises(DeadlineExceededError):
            bus.invoke("pricing", "GET /prices/halo", {},
                       deadline=deadline)
        # Refused pre-dispatch: the handler never ran.
        assert bus.stats("pricing").calls == calls_before

    def test_bus_abandons_call_when_latency_exhausts_budget(self):
        from repro.services.bus import ServiceBus
        from repro.services.samples import PricingService

        clock = SimClock(start_ms=0)
        bus = ServiceBus(clock=clock, base_latency_ms=18.0)
        bus.register(PricingService())
        deadline = Deadline(clock, 10)  # less than the transport cost
        with pytest.raises(DeadlineExceededError):
            bus.invoke("pricing", "GET /prices/halo", {},
                       deadline=deadline)
        assert bus.stats("pricing").failures == 1


class TestDeadlineDegradedPipeline:
    """End-to-end: an overrun query degrades, it never fails."""

    @pytest.fixture()
    def platform(self, tiny_web):
        from repro.core.platform import Symphony
        from repro.services.samples import PricingService
        from tests.conftest import make_inventory_csv

        symphony = Symphony(web=tiny_web, use_authority=False,
                            cache_enabled=False, resilience=True)
        symphony.bus.register(PricingService())
        account = symphony.register_designer("Ann")
        games = symphony.web.entities["video_games"][:3]
        symphony.upload_http(account, "inv.csv",
                             make_inventory_csv(games), "inventory",
                             content_type="text/csv")
        inventory = symphony.add_proprietary_source(
            account, "inventory", ("title",))
        pricing = symphony.add_service_source(
            "Pricing", "pricing", "GET /prices/{sku}", "sku")
        session = symphony.designer().new_application(
            "Shop", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",))
        session.add_text(slot, "title")
        session.drag_source_onto_result_layout(
            slot, pricing.source_id, drive_fields=("title",))
        app_id = symphony.host(session)
        return symphony, app_id, games

    def test_generous_budget_not_degraded(self, platform):
        symphony, app_id, games = platform
        response = symphony.query(app_id, games[0],
                                  deadline_ms=10_000)
        assert not response.degraded
        assert response.views

    def test_tight_budget_degrades_to_partial_results(self, platform):
        symphony, app_id, games = platform
        # 15ms covers the receive stage and the primary lookup but not
        # the supplemental pricing call: partial results, not a failure.
        response = symphony.query(app_id, games[0], deadline_ms=15)
        assert response.degraded
        assert response.views  # primary results still served
        assert all(not result.items
                   for view in response.views
                   for result in view.supplemental.values())
        assert any("deadline exceeded" in warning
                   for warning in response.trace.warnings)
        assert "DEGRADED" in response.trace.describe()

    def test_deadline_exceeded_event_emitted_once(self, tiny_web):
        from repro.core.platform import Symphony
        from tests.conftest import make_inventory_csv

        symphony = Symphony(web=tiny_web, use_authority=False,
                            cache_enabled=False, resilience=True,
                            telemetry=True)
        account = symphony.register_designer("Ann")
        games = symphony.web.entities["video_games"][:3]
        symphony.upload_http(account, "inv.csv",
                             make_inventory_csv(games), "inventory",
                             content_type="text/csv")
        inventory = symphony.add_proprietary_source(
            account, "inventory", ("title",))
        reviews = symphony.add_web_source("Reviews", "web")
        session = symphony.designer().new_application(
            "Shop", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",))
        session.add_text(slot, "title")
        session.drag_source_onto_result_layout(
            slot, reviews.source_id, drive_fields=("title",))
        app_id = symphony.host(session)
        response = symphony.query(app_id, games[0], deadline_ms=5)
        assert response.degraded
        events = symphony.telemetry.events.by_kind("deadline.exceeded")
        assert len(events) == 1
        counter = symphony.telemetry.metrics.counter(
            "deadline_exceeded_total")
        assert counter.value == 1


class TestChaosHarness:
    def test_committed_plan_holds_invariants(self):
        from repro.resilience.chaos import load_fault_plan, run_chaos

        plan = load_fault_plan("examples/chaos_fault_plan.json")
        plan = replace(plan, queries=10)
        report = run_chaos(plan)
        assert report.ok, report.render()
        assert report.queries_run == 10
        assert not report.escaped
        # The committed storm is strong enough to exercise the
        # machinery it exists to prove.
        assert report.degraded > 0
        assert report.retries > 0

    def test_runs_replay_identically(self):
        from repro.resilience.chaos import load_fault_plan, run_chaos

        plan = load_fault_plan("examples/chaos_fault_plan.json")
        plan = replace(plan, queries=6)
        first = run_chaos(plan)
        second = run_chaos(plan)
        assert first == second
        assert first.render() == second.render()

    def test_plan_round_trips_from_json(self, tmp_path):
        from repro.resilience.chaos import FaultPlan, load_fault_plan

        plan = FaultPlan(name="x", seed=3, queries=2,
                         retry=RetryPolicy(max_attempts=2, seed=5),
                         hedge=None)
        raw = {
            "name": "x", "seed": 3, "queries": 2,
            "retry": {"max_attempts": 2, "seed": 5},
            "hedge": None,
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(raw), encoding="utf-8")
        loaded = load_fault_plan(path)
        assert loaded.retry == plan.retry
        assert loaded.hedge is None
        assert loaded.name == "x"


class TestResilienceConfig:
    def test_defaults(self):
        config = ResilienceConfig()
        assert config.deadline_ms == 1500.0
        assert isinstance(config.retry, RetryPolicy)
        assert isinstance(config.hedge, HedgePolicy)

    def test_platform_accepts_true(self, tiny_web):
        from repro.core.platform import Symphony
        symphony = Symphony(web=tiny_web, use_authority=False,
                            resilience=True)
        assert isinstance(symphony.resilience, ResilienceConfig)
        assert symphony.runtime.resilience is symphony.resilience
