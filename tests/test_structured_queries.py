"""Tests for richer structured querying (future work item 2):
range filters in the query language and the StructuredQuery API."""

import pytest
from hypothesis import given, strategies as st

from repro.core.datasources import ProprietaryTableSource, SourceQuery
from repro.core.structured import (
    FieldPredicate,
    StructuredQuery,
    execute_structured,
)
from repro.errors import QueryError, ValidationError
from repro.searchengine.query import RangeNode, parse_query
from repro.storage.records import FieldSpec, FieldType, RecordTable, Schema


@pytest.fixture()
def store():
    schema = Schema((
        FieldSpec("title", FieldType.STRING),
        FieldSpec("genre", FieldType.STRING),
        FieldSpec("price", FieldType.FLOAT),
        FieldSpec("stock", FieldType.INTEGER),
        FieldSpec("released", FieldType.DATE),
    ))
    table = RecordTable("games", schema)
    rows = [
        ("Halo Odyssey", "shooter", 49.99, 3, "2009-11-03"),
        ("Halo Tactics", "strategy", 29.99, 0, "2008-06-12"),
        ("Zelda Legends", "adventure", 39.99, 5, "2009-02-20"),
        ("Braid Arena", "puzzle", 14.99, 9, "2008-08-08"),
        ("Okami Zero", "adventure", 24.99, 2, "2009-09-01"),
    ]
    for title, genre, price, stock, released in rows:
        table.insert({"title": title, "genre": genre, "price": price,
                      "stock": stock, "released": released})
    return ProprietaryTableSource("src", "Games", table,
                                  ("title", "genre"))


class TestRangeSyntax:
    def test_parses(self):
        node = parse_query("price:[10 TO 30]")
        assert node == RangeNode("price", "10", "30")

    def test_open_bounds(self):
        assert parse_query("price:[* TO 30]") == \
            RangeNode("price", "*", "30")
        assert parse_query("price:[10 TO *]") == \
            RangeNode("price", "10", "*")

    def test_combines_with_terms(self):
        node = parse_query("halo price:[10 TO 30]")
        assert isinstance(node.children[1], RangeNode)

    def test_missing_to_rejected(self):
        with pytest.raises(QueryError):
            parse_query("price:[10 30]")

    def test_date_range(self):
        node = parse_query("released:[2009-01-01 TO 2009-12-31]")
        assert node.field == "released"


class TestRangeEvaluation:
    def search(self, store, text):
        return {item.get("title")
                for item in store.search(
                    SourceQuery(text, count=10)).items}

    def test_numeric_range(self, store):
        titles = self.search(store, "price:[20 TO 40]")
        assert titles == {"Halo Tactics", "Zelda Legends",
                          "Okami Zero"}

    def test_open_low(self, store):
        titles = self.search(store, "price:[* TO 15]")
        assert titles == {"Braid Arena"}

    def test_open_high(self, store):
        titles = self.search(store, "price:[40 TO *]")
        assert titles == {"Halo Odyssey"}

    def test_date_range_lexicographic(self, store):
        titles = self.search(store,
                             "released:[2009-01-01 TO 2009-12-31]")
        assert titles == {"Halo Odyssey", "Zelda Legends",
                          "Okami Zero"}

    def test_range_with_text_conjunction(self, store):
        titles = self.search(store, "halo price:[* TO 35]")
        assert titles == {"Halo Tactics"}

    def test_empty_range(self, store):
        assert self.search(store, "price:[1000 TO 2000]") == set()


class TestPredicates:
    def test_operators(self):
        values = {"price": 25.0, "genre": "adventure", "stock": 2}
        assert FieldPredicate("price", "lt", 30).matches(values)
        assert FieldPredicate("price", "ge", "25").matches(values)
        assert not FieldPredicate("price", "gt", 30).matches(values)
        assert FieldPredicate("genre", "eq", "adventure").matches(
            values)
        assert FieldPredicate("genre", "contains", "VENT").matches(
            values)

    def test_missing_field_never_matches(self):
        assert not FieldPredicate("nope", "eq", 1).matches({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValidationError):
            FieldPredicate("price", "between", (1, 2))

    def test_string_value_coerced_for_numeric_field(self):
        assert FieldPredicate("price", "le", "30").matches(
            {"price": 25.0}
        )


class TestStructuredQuery:
    def test_filter_sort_limit(self, store):
        query = (StructuredQuery(limit=2, order_by="price")
                 .where("stock", "ge", 1)
                 .where("price", "le", 40))
        result = store.structured_search(query)
        titles = [item.get("title") for item in result.items]
        assert titles == ["Braid Arena", "Okami Zero"]
        assert result.total_matches == 3  # Zelda filtered by limit only

    def test_descending_order(self, store):
        query = StructuredQuery(limit=10, order_by="price",
                                descending=True)
        result = store.structured_search(query)
        prices = [item.fields["price"] for item in result.items]
        assert prices == sorted(prices, reverse=True)

    def test_offset_paging(self, store):
        base = StructuredQuery(limit=2, order_by="price")
        first = store.structured_search(base)
        second = store.structured_search(StructuredQuery(
            limit=2, offset=2, order_by="price"))
        ids = {i.item_id for i in first.items}
        assert ids.isdisjoint(i.item_id for i in second.items)

    def test_text_plus_predicates(self, store):
        query = StructuredQuery(text="halo", limit=10).where(
            "stock", "gt", 0)
        result = store.structured_search(query)
        assert [i.get("title") for i in result.items] == \
            ["Halo Odyssey"]

    def test_text_relevance_order_preserved_without_sort(self, store):
        query = StructuredQuery(text="adventure", limit=10)
        result = store.structured_search(query)
        assert len(result.items) == 2

    def test_contains_predicate(self, store):
        query = StructuredQuery(limit=10).where("title", "contains",
                                                "halo")
        result = store.structured_search(query)
        assert result.total_matches == 2

    def test_unknown_sort_field_rejected(self, store):
        with pytest.raises(ValidationError):
            store.structured_search(
                StructuredQuery(limit=5, order_by="nonexistent")
            )

    def test_nonpositive_limit_rejected(self, store):
        with pytest.raises(ValidationError):
            store.structured_search(StructuredQuery(limit=0))

    @given(st.floats(min_value=0, max_value=60, allow_nan=False))
    def test_price_threshold_property(self, threshold):
        schema = Schema((FieldSpec("title", FieldType.STRING),
                         FieldSpec("price", FieldType.FLOAT)))
        table = RecordTable("t", schema)
        prices = [5.0, 15.0, 25.0, 35.0, 45.0, 55.0]
        for i, price in enumerate(prices):
            table.insert({"title": f"Item {i}", "price": price})
        source = ProprietaryTableSource("s", "S", table, ("title",))
        result = execute_structured(
            source, StructuredQuery(limit=10).where("price", "le",
                                                    threshold)
        )
        expected = sum(1 for price in prices if price <= threshold)
        assert result.total_matches == expected
