"""Tests for platform persistence (export/import) and the CLI."""

import json

import pytest

from repro.core.persistence import (
    export_platform,
    import_platform,
    load_platform,
    save_platform,
)
from repro.core.platform import Symphony
from repro.errors import ConfigurationError, DuplicateError

from tests.conftest import make_inventory_csv


@pytest.fixture()
def populated(symphony):
    sym = symphony
    ann = sym.register_designer("Ann")
    games = sym.web.entities["video_games"][:4]
    sym.upload_http(ann, "inv.csv", make_inventory_csv(games),
                    "inventory", content_type="text/csv")
    inventory = sym.add_proprietary_source(
        ann, "inventory", ("title", "producer"))
    reviews = sym.add_web_source(
        "Reviews", "web", sites=("gamespot.com", "ign.com"))
    customers = sym.add_customer_source()
    customers.set_profile("u1", ("rpg", "strategy"))
    sym.add_ad_source("Sponsored", max_ads=3)
    session = sym.designer().new_application("Shop",
                                             ann.tenant.tenant_id)
    slot = session.drag_source_onto_app(
        inventory.source_id, search_fields=("title",), max_results=2)
    session.add_text(slot, "title")
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        query_suffix="review")
    app_id = sym.host(session)
    return sym, app_id, games


class TestExport:
    def test_export_shape(self, populated):
        sym, app_id, __ = populated
        data = export_platform(sym)
        assert data["version"] == 1
        assert len(data["tenants"]) == 1
        assert len(data["applications"]) == 1
        types = sorted(c["type"] for c in data["sources"])
        assert types == ["ads", "customer", "proprietary", "web"]

    def test_export_is_json_serializable(self, populated):
        sym, *_ = populated
        json.dumps(export_platform(sym))  # must not raise

    def test_proprietary_config_carries_tenant(self, populated):
        sym, *_ = populated
        data = export_platform(sym)
        config = next(c for c in data["sources"]
                      if c["type"] == "proprietary")
        assert config["tenant_id"].startswith("tenant-")
        assert config["table_name"] == "inventory"


class TestImport:
    def test_roundtrip_query_identical(self, populated, tiny_web):
        sym, app_id, games = populated
        original = sym.query(app_id, games[0])
        restored = Symphony(web=tiny_web, use_authority=False)
        summary = import_platform(restored, export_platform(sym))
        assert summary == {"tenants": 1, "sources": 4,
                           "applications": 1}
        again = restored.query(app_id, games[0])
        assert again.html == original.html

    def test_restored_tables_writable(self, populated, tiny_web):
        sym, app_id, games = populated
        restored = Symphony(web=tiny_web, use_authority=False)
        import_platform(restored, export_platform(sym))
        tenant_id = export_platform(sym)["tenants"][0]["tenant_id"]
        table = restored.catalog.tenant(tenant_id).table("inventory")
        before = len(table)
        table.insert({"title": "New Game", "producer": "X",
                      "description": "d",
                      "image_url": "http://img.example/n.jpg",
                      "detail_url": "http://s.example/n"})
        assert len(table) == before + 1

    def test_restored_customer_profiles(self, populated, tiny_web):
        sym, *_ = populated
        restored = Symphony(web=tiny_web, use_authority=False)
        import_platform(restored, export_platform(sym))
        config = next(c for c in export_platform(sym)["sources"]
                      if c["type"] == "customer")
        source = restored.sources.get(config["source_id"])
        assert source.profile("u1") == ("rpg", "strategy")

    def test_routes_remounted(self, populated, tiny_web):
        sym, app_id, __ = populated
        restored = Symphony(web=tiny_web, use_authority=False)
        import_platform(restored, export_platform(sym))
        assert restored.router.resolve(f"/apps/{app_id}/query") == \
            app_id

    def test_version_mismatch_rejected(self, populated, tiny_web):
        sym, *_ = populated
        data = export_platform(sym)
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            import_platform(Symphony(web=tiny_web,
                                     use_authority=False), data)

    def test_double_import_rejected(self, populated, tiny_web):
        sym, *_ = populated
        data = export_platform(sym)
        restored = Symphony(web=tiny_web, use_authority=False)
        import_platform(restored, data)
        with pytest.raises(DuplicateError):
            import_platform(restored, data)

    def test_file_roundtrip(self, populated, tiny_web, tmp_path):
        sym, app_id, games = populated
        path = tmp_path / "state.json"
        save_platform(sym, path)
        restored = Symphony(web=tiny_web, use_authority=False)
        summary = load_platform(restored, path)
        assert summary["applications"] == 1
        assert restored.query(app_id, games[0]).views


class TestCli:
    def run(self, *argv, seed=11):
        from repro.cli import main
        return main(["--seed", str(seed), *argv])

    def test_stats(self, capsys):
        assert self.run("stats") == 0
        out = capsys.readouterr().out
        assert "Synthetic web:" in out and "pages" in out

    def test_search(self, capsys):
        assert self.run("search", "game review", "--count", "3") == 0
        out = capsys.readouterr().out
        assert "matches" in out

    def test_search_site_restricted(self, capsys):
        assert self.run("search", "game", "--site",
                        "gamespot.com") == 0
        out = capsys.readouterr().out
        assert "gamespot.com" in out

    def test_table1(self, capsys):
        assert self.run("table1") == 0
        out = capsys.readouterr().out
        assert "Symphony" in out and "Google Base" in out
        assert "verified against live probes" in out

    def test_demo(self, capsys):
        assert self.run("demo") == 0
        out = capsys.readouterr().out
        assert "Pipeline trace" in out
        assert "review:" in out

    def test_suggest_without_history_uses_link_prior(self, capsys):
        code = self.run("suggest", "gamespot.com")
        out = capsys.readouterr().out
        assert code == 0
        assert "related to" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            self.run("frobnicate")
