"""Tests for query/click logging."""

from repro.searchengine.logs import ClickEvent, QueryEvent, QueryLog


def q(query, app_id=None, session_id=None):
    return QueryEvent(timestamp_ms=0, query=query, vertical="web",
                      app_id=app_id, session_id=session_id)


def c(query, url, app_id=None, is_ad=False):
    return ClickEvent(timestamp_ms=0, query=query, url=url,
                      app_id=app_id, is_ad=is_ad)


class TestQueryLog:
    def test_append_and_slice_by_app(self):
        log = QueryLog()
        log.log_query(q("halo", app_id="a"))
        log.log_query(q("zelda", app_id="b"))
        log.log_click(c("halo", "http://x.example/1", app_id="a"))
        assert len(log.queries_for_app("a")) == 1
        assert len(log.clicks_for_app("a")) == 1
        assert log.queries_for_app("c") == []

    def test_click_site_extraction(self):
        click = c("halo", "http://gamespot.com/halo-review")
        assert click.site == "gamespot.com"

    def test_clicked_sites_by_query_groups_and_normalizes(self):
        log = QueryLog()
        log.log_click(c("Halo ", "http://a.example/1"))
        log.log_click(c("halo", "http://b.example/2"))
        log.log_click(c("zelda", "http://c.example/3"))
        grouped = log.clicked_sites_by_query()
        assert grouped["halo"] == {"a.example", "b.example"}
        assert grouped["zelda"] == {"c.example"}

    def test_ad_clicks_excluded_from_cooccurrence(self):
        log = QueryLog()
        log.log_click(c("halo", "http://ads.example/1", is_ad=True))
        assert log.clicked_sites_by_query() == {}

    def test_clear(self):
        log = QueryLog()
        log.log_query(q("halo"))
        log.log_click(c("halo", "http://a.example/1"))
        log.clear()
        assert not log.queries and not log.clicks
