"""Tests for click recording, traffic summaries, and referral reports."""

import pytest

from repro.core.monetization import InteractionRecorder, ReferralReport
from repro.searchengine.logs import QueryEvent, QueryLog
from repro.services.ads import AdService
from repro.util import SimClock

DAY_MS = 86_400_000


@pytest.fixture()
def setup():
    log = QueryLog()
    clock = SimClock(start_ms=0)
    ads = AdService()
    advertiser = ads.create_advertiser("A", 50.0)
    ads.create_campaign(advertiser.advertiser_id, ["game"], 0.40,
                        "Ad", "http://ad.example")
    recorder = InteractionRecorder(log, clock, ad_service=ads)
    return log, clock, ads, recorder


class TestRecording:
    def test_click_logged(self, setup):
        log, clock, ads, recorder = setup
        result = recorder.record_click("app-1", "halo",
                                       "http://shop.example/halo")
        assert result["logged"]
        assert log.clicks[-1].app_id == "app-1"
        assert not log.clicks[-1].is_ad

    def test_ad_click_credits_designer(self, setup):
        log, clock, ads, recorder = setup
        ad = ads.select_ads("game", "app-1")[0]
        result = recorder.record_click("app-1", "game", ad.url,
                                       ad_id=ad.ad_id)
        assert result["charged"] == ad.price_per_click
        assert recorder.ad_earnings("app-1") > 0
        assert log.clicks[-1].is_ad

    def test_no_ad_service_earnings_zero(self):
        recorder = InteractionRecorder(QueryLog(), SimClock())
        assert recorder.ad_earnings("app-1") == 0.0


class TestSummaries:
    def fill(self, setup_tuple):
        log, clock, ads, recorder = setup_tuple
        for i, query in enumerate(["halo", "halo", "zelda"]):
            log.log_query(QueryEvent(
                timestamp_ms=clock.now_ms, query=query,
                vertical="app", app_id="app-1",
                session_id=f"s{i}",
            ))
        recorder.record_click("app-1", "halo",
                              "http://gamespot.com/halo")
        clock.advance(DAY_MS)  # next day
        recorder.record_click("app-1", "halo",
                              "http://gamespot.com/halo2")
        recorder.record_click("app-1", "zelda",
                              "http://ign.com/zelda")
        return setup_tuple

    def test_counts(self, setup):
        log, clock, ads, recorder = self.fill(setup)
        summary = recorder.summarize("app-1")
        assert summary.query_count == 3
        assert summary.click_count == 3
        assert summary.ad_click_count == 0
        assert summary.click_through_rate == 1.0

    def test_clicks_by_site(self, setup):
        __, __, __, recorder = self.fill(setup)
        summary = recorder.summarize("app-1")
        assert summary.clicks_by_site == {"gamespot.com": 2,
                                          "ign.com": 1}

    def test_clicks_by_day(self, setup):
        __, __, __, recorder = self.fill(setup)
        summary = recorder.summarize("app-1")
        assert summary.clicks_by_day == {0: 1, 1: 2}

    def test_top_queries(self, setup):
        __, __, __, recorder = self.fill(setup)
        summary = recorder.summarize("app-1", top_n_queries=1)
        assert summary.top_queries == (("halo", 2),)

    def test_other_apps_not_included(self, setup):
        __, __, __, recorder = self.fill(setup)
        assert recorder.summarize("app-2").query_count == 0

    def test_empty_app_ctr_zero(self, setup):
        __, __, __, recorder = setup
        assert recorder.summarize("nothing").click_through_rate == 0.0


class TestReferralReport:
    def test_rows_and_totals(self, setup):
        log, clock, ads, recorder = setup
        for __ in range(3):
            recorder.record_click("app-1", "halo",
                                  "http://gamespot.com/x")
        recorder.record_click("app-1", "halo", "http://ign.com/y")
        report = ReferralReport(recorder.summarize("app-1"),
                                rate_per_click=0.10)
        rows = report.rows()
        assert rows[0] == {"site": "gamespot.com", "clicks": 3,
                           "owed": 0.30}
        assert report.total_owed() == pytest.approx(0.40)

    def test_csv_download(self, setup):
        __, __, __, recorder = setup
        recorder.record_click("app-1", "halo", "http://gamespot.com/x")
        csv_text = ReferralReport(recorder.summarize("app-1")).to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "site,clicks,owed"
        assert lines[1].startswith("gamespot.com,1,")
