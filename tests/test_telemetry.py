"""Tests for repro.telemetry: tracing, metrics, events, exports.

Covers the determinism contract (identical seeded runs produce
identical span trees, even across scatter-gather worker threads),
histogram quantile edge cases, instrument wiring (cache stats, breaker
and limiter events), and the JSONL round-trip through the exporter.
"""

from __future__ import annotations

import io
import json
import math
from collections import deque

import pytest

from repro.cluster import ClusterConfig, build_clustered_engine
from repro.core.platform import Symphony
from repro.core.runtime import (
    CircuitBreaker,
    PipelineTrace,
    RateLimiter,
    ResultCache,
)
from repro.errors import QuotaExceededError
from repro.telemetry import (
    NULL_TRACER,
    EventLog,
    Histogram,
    MetricsRegistry,
    Telemetry,
    build_span_forest,
    dump_jsonl,
    load_jsonl,
    render_report,
    render_span_tree,
    telemetry_lines,
)
from repro.util import SimClock

from tests.conftest import make_inventory_csv


# -- helpers ------------------------------------------------------------------


def traced_symphony(web, cluster=2):
    """A telemetry-enabled clustered platform on a prebuilt web."""
    return Symphony(web=web, use_authority=False, cluster=cluster,
                    telemetry=True)


def build_app(sym):
    """A GamerQueen-style app with a proprietary primary source and a
    supplemental web source; returns ``(app_id, games)``."""
    account = sym.register_designer("Ann")
    games = sym.web.entities["video_games"][:4]
    sym.upload_http(
        account, "inventory.csv", make_inventory_csv(games),
        "inventory", content_type="text/csv",
    )
    inventory = sym.add_proprietary_source(
        account, "inventory",
        search_fields=("title", "producer", "description"),
    )
    reviews = sym.add_web_source("Game reviews", "web")
    session = sym.designer().new_application(
        "GamerQueen", account.tenant.tenant_id
    )
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=2,
        search_fields=("title", "producer", "description"),
    )
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        heading="Reviews", max_results=2, query_suffix="review",
    )
    return sym.host(session), games


# -- histogram edge cases -----------------------------------------------------


class TestHistogram:
    def test_empty_histogram_has_no_quantiles(self):
        hist = Histogram("latency")
        assert hist.quantile(0.5) is None
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None
        assert summary["min"] is None

    def test_single_sample_is_every_quantile(self):
        hist = Histogram("latency")
        hist.observe(42.0)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == 42.0
        assert hist.summary()["count"] == 1

    def test_duplicate_samples(self):
        hist = Histogram("latency")
        for __ in range(10):
            hist.observe(7.0)
        assert hist.quantile(0.5) == 7.0
        assert hist.quantile(0.99) == 7.0
        assert hist.summary()["sum"] == 70.0

    def test_quantile_zero_and_one_are_min_and_max(self):
        hist = Histogram("latency")
        for value in (5.0, 1.0, 3.0, 9.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 9.0

    def test_quantile_rejects_out_of_range(self):
        hist = Histogram("latency")
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_compaction_keeps_exact_count_and_extremes(self):
        hist = Histogram("latency", sample_cap=8)
        for value in range(100):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 0.0
        assert summary["max"] == 99.0
        # Quantiles stay approximately right despite compaction.
        assert 30.0 <= hist.quantile(0.5) <= 70.0

    def test_compaction_is_deterministic(self):
        def run():
            hist = Histogram("latency", sample_cap=8)
            for value in [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7]:
                hist.observe(float(value))
            return hist.summary()

        assert run() == run()

    def test_interleaved_observe_and_quantile(self):
        # Regression for the lazy-sort flag: an observe after a
        # quantile read must dirty the sorted sample buffer, or later
        # quantiles are computed against a stale ordering.
        hist = Histogram("latency")
        reference: list[float] = []
        values = [50.0, 10.0, 90.0, 30.0, 70.0, 20.0, 80.0, 5.0]
        for value in values:
            hist.observe(value)
            reference.append(value)
            ordered = sorted(reference)
            for q in (0.0, 0.5, 0.95, 1.0):
                index = max(0, math.ceil(q * len(ordered)) - 1)
                assert hist.quantile(q) == ordered[index]

    def test_buckets_are_cumulative_with_overflow(self):
        hist = Histogram("latency")
        for value in (0.5, 3.0, 3.0, 40.0, 99_999.0):
            hist.observe(value)
        buckets = hist.buckets()
        assert buckets["1"] == 1        # 0.5
        assert buckets["5"] == 3        # + two 3.0s
        assert buckets["50"] == 4       # + 40.0
        assert buckets["10000"] == 4    # nothing between 50 and 10k
        assert buckets["+Inf"] == 5     # 99999 overflows the last bound
        assert list(buckets)[-1] == "+Inf"

    def test_bucket_counts_survive_compaction(self):
        # Sample compaction approximates quantiles but must never touch
        # the exact bucket counters.
        hist = Histogram("latency", sample_cap=8)
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.buckets()["100"] == 100
        assert hist.buckets()["+Inf"] == 100


# -- metrics registry ---------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_identity_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", source="web")
        b = registry.counter("hits", source="web")
        c = registry.counter("hits", source="ads")
        assert a is b
        assert a is not c

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(3)
        registry.histogram("stage_ms", stage="primary").observe(5.0)
        text = registry.render_prometheus()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 3.0" in text
        assert 'repro_stage_ms{stage="primary",quantile="0.5"} 5.0' \
            in text
        assert 'repro_stage_ms_count{stage="primary"} 1' in text

    def test_prometheus_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("stage_ms", stage="primary")
        for value in (0.5, 3.0, 40.0):
            hist.observe(value)
        text = registry.render_prometheus()
        assert "# TYPE repro_stage_ms histogram" in text
        assert 'repro_stage_ms_bucket{stage="primary",le="1"} 1' \
            in text
        assert 'repro_stage_ms_bucket{stage="primary",le="5"} 2' \
            in text
        assert 'repro_stage_ms_bucket{stage="primary",le="50"} 3' \
            in text
        assert 'repro_stage_ms_bucket{stage="primary",le="+Inf"} 3' \
            in text
        assert 'repro_stage_ms_sum{stage="primary"} 43.5' in text

    def test_bucket_labels_order_keeps_le_last(self):
        # Prometheus convention: `le` renders after the metric's own
        # labels so series sort stably across scrapes.
        registry = MetricsRegistry()
        registry.histogram("ms", zone="a").observe(1.0)
        text = registry.render_prometheus()
        assert 'repro_ms_bucket{zone="a",le="1"} 1' in text


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_null_tracer_returns_shared_falsy_span(self):
        span_a = NULL_TRACER.span("anything")
        span_b = NULL_TRACER.span("else")
        assert span_a is span_b
        assert not span_a

    def test_nested_spans_parent_and_ids_are_stable(self):
        clock = SimClock()
        telemetry = Telemetry(clock=clock)
        with telemetry.tracer.span("query") as root:
            with telemetry.tracer.span("stage:primary") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        forest = build_span_forest(telemetry.tracer.spans)
        assert len(forest) == 1
        assert forest[0]["name"] == "query"
        assert forest[0]["children"][0]["name"] == "stage:primary"

    def test_exception_marks_span_error(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.tracer.span("boom"):
                raise RuntimeError("kaput")
        (span,) = telemetry.tracer.spans
        assert span.status == "error"
        assert span.attrs["error"] == "kaput"


# -- cluster tracing ----------------------------------------------------------


@pytest.fixture()
def traced_cluster(tiny_web):
    telemetry = Telemetry()
    engine = build_clustered_engine(
        tiny_web,
        config=ClusterConfig(num_shards=2, replicas_per_shard=2),
        clock=telemetry.clock,
        use_authority=False,
        telemetry=telemetry,
    )
    yield engine, telemetry
    engine.close()


class TestClusterTracing:
    def test_shard_spans_parent_under_phase_spans(self, traced_cluster):
        engine, telemetry = traced_cluster
        engine.search("web", "video game")
        spans = telemetry.tracer.spans
        by_id = {s.span_id: s for s in spans}
        shard_spans = [s for s in spans
                       if s.name.startswith(("stats:", "exec:"))]
        assert len(shard_spans) == 4  # 2 phases x 2 shards
        for span in shard_spans:
            parent = by_id[span.parent_id]
            expected = ("phase:stats" if span.name.startswith("stats:")
                        else "phase:execute")
            assert parent.name == expected

    def test_single_connected_trace_includes_replica_attempts(
            self, traced_cluster):
        engine, telemetry = traced_cluster
        engine.search("web", "video game")
        trace_ids = telemetry.tracer.trace_ids()
        assert len(trace_ids) == 1
        spans = telemetry.tracer.trace_spans(trace_ids[0])
        names = {s.name for s in spans}
        assert "cluster.search" in names
        assert any(n.startswith("attempt:") for n in names)
        # Every span except the root has a parent in the same trace.
        ids = {s.span_id for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in ids

    def test_failover_shows_error_attempt_and_retry(
            self, traced_cluster):
        engine, telemetry = traced_cluster
        engine.groups[0].replicas[0].inject_fault(1)
        response = engine.search("web", "video game")
        assert not response.degraded
        attempts = [s for s in telemetry.tracer.spans
                    if s.name.startswith("attempt:shard-0/")]
        errored = [s for s in attempts if s.status == "error"]
        assert len(errored) == 1
        # The failed attempt has a healthy sibling retry on the other
        # replica under the same shard task span.
        retries = [s for s in attempts
                   if s.parent_id == errored[0].parent_id
                   and s.status == "ok"]
        assert retries
        kinds = telemetry.events.counts()
        assert kinds.get("replica.failover") == 1

    def test_degraded_query_emits_event_and_counter(self,
                                                    traced_cluster):
        engine, telemetry = traced_cluster
        engine.kill_replica(0, 0)
        engine.kill_replica(0, 1)
        response = engine.search("web", "video game")
        assert response.degraded
        assert telemetry.events.counts().get("shard.unavailable")
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counter"]["degraded_queries_total"] == 1.0

    def test_identical_runs_produce_identical_span_trees(self,
                                                         tiny_web):
        def run():
            telemetry = Telemetry()
            engine = build_clustered_engine(
                tiny_web,
                config=ClusterConfig(num_shards=2,
                                     replicas_per_shard=2),
                clock=telemetry.clock,
                use_authority=False,
                telemetry=telemetry,
            )
            try:
                engine.search("web", "video game")
                engine.search("web", "strategy guide")
            finally:
                engine.close()
            return render_span_tree(telemetry.tracer.spans,
                                    include_ids=True)

        assert run() == run()


# -- pipeline integration -----------------------------------------------------


@pytest.fixture()
def traced_gamerqueen(tiny_web):
    sym = traced_symphony(tiny_web)
    app_id, games = build_app(sym)
    return sym, app_id, games


class TestPipelineTelemetry:
    def test_query_produces_one_connected_tree(self,
                                               traced_gamerqueen):
        sym, app_id, games = traced_gamerqueen
        response = sym.query(app_id, games[0])
        tracer = sym.telemetry.tracer
        roots = [s for s in tracer.spans if s.name == "query"]
        assert len(roots) == 1
        spans = tracer.trace_spans(roots[0].trace_id)
        names = {s.name for s in spans}
        # Runtime stages, source calls, cluster phases, shard tasks,
        # and replica attempts all hang off the one query root.
        assert {"stage:receive", "stage:primary",
                "stage:supplemental", "stage:merge+render",
                "stage:respond", "source", "cluster.search"} <= names
        assert any(n.startswith("attempt:") for n in names)
        # The flat stage contract is preserved on the same response.
        assert [s.name for s in response.trace.stages] == [
            "receive", "primary", "supplemental", "merge+render",
            "respond",
        ]

    def test_trace_describe_tree_mode(self, traced_gamerqueen):
        sym, app_id, games = traced_gamerqueen
        response = sym.query(app_id, games[0])
        tree = response.trace.describe(tree=True)
        assert "Pipeline trace (span tree):" in tree
        assert "cluster.search" in tree
        flat = response.trace.describe()
        assert "TOTAL" in flat

    def test_query_metrics_recorded(self, traced_gamerqueen):
        sym, app_id, games = traced_gamerqueen
        sym.query(app_id, games[0])
        sym.query(app_id, games[0])  # second run hits the cache
        snapshot = sym.telemetry.metrics.snapshot()
        assert snapshot["counter"]["queries_total"] == 2.0
        assert snapshot["gauge"]["result_cache_hits"] >= 1.0
        stage_hist = snapshot["histogram"]["stage_ms{stage=primary}"]
        assert stage_hist["count"] == 2

    def test_disabled_telemetry_records_nothing(self, tiny_web):
        sym = Symphony(web=tiny_web, use_authority=False)
        app_id, games = build_app(sym)
        response = sym.query(app_id, games[0])
        assert not sym.telemetry.enabled
        assert sym.telemetry.tracer.spans == ()
        assert response.trace.span is None
        # The flat trace still works exactly as before.
        assert response.trace.total_ms() > 0

    def test_pipeline_trace_default_has_no_span(self):
        trace = PipelineTrace()
        assert trace.span is None
        trace.add_stage("receive", 1.0)
        assert trace.total_ms() == 1.0


# -- cache, breaker, limiter instrumentation ---------------------------------


class TestInstrumentWiring:
    def test_result_cache_stats(self):
        cache = ResultCache(max_entries=2, ttl_ms=100)
        assert cache.get("a", now_ms=0) is None           # miss
        cache.put("a", "va", now_ms=0)
        assert cache.get("a", now_ms=10) == "va"          # hit
        assert cache.get("a", now_ms=200) is None         # ttl eviction
        cache.put("b", "vb", now_ms=300)
        cache.put("c", "vc", now_ms=300)
        cache.put("d", "vd", now_ms=300)                  # lru eviction
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["ttl_evictions"] == 1
        assert stats["lru_evictions"] == 1
        assert stats["entries"] == 2

    def test_circuit_breaker_emits_state_transitions(self):
        clock = SimClock()
        events = EventLog(clock=clock)
        breaker = CircuitBreaker(clock, failure_threshold=2,
                                 cooldown_ms=50, events=events)
        breaker.record_failure("src")
        breaker.record_failure("src")          # trips open
        assert breaker.state("src") == "open"
        clock.advance(50)
        assert not breaker.is_open("src")      # admits the probe
        breaker.record_failure("src")          # failed probe reopens
        clock.advance(50)
        assert not breaker.is_open("src")
        breaker.record_success("src")          # closes
        kinds = [e.kind for e in events.events]
        assert kinds == [
            "circuit.open", "circuit.half_open", "circuit.reopen",
            "circuit.half_open", "circuit.closed",
        ]

    def test_rate_limiter_emits_rejections(self):
        clock = SimClock()
        events = EventLog(clock=clock)
        limiter = RateLimiter(clock, max_requests=1, window_ms=1000,
                              events=events)
        limiter.check("app-1")
        with pytest.raises(QuotaExceededError):
            limiter.check("app-1")
        (event,) = events.events
        assert event.kind == "ratelimit.rejected"
        assert event.fields["app_id"] == "app-1"

    def test_event_log_counts_dropped_on_wrap(self):
        registry = MetricsRegistry()
        log = EventLog(metrics=registry, max_events=3)
        for i in range(5):
            log.emit("tick", n=i)
        assert len(log) == 3
        assert log.dropped == 2
        # Oldest two evicted; the deque keeps the newest window.
        assert [e.fields["n"] for e in log.events] == [2, 3, 4]
        counters = registry.snapshot()["counter"]
        assert counters["events_dropped_total"] == 2.0

    def test_event_log_no_drops_below_capacity(self):
        registry = MetricsRegistry()
        log = EventLog(metrics=registry, max_events=10)
        for __ in range(10):
            log.emit("tick")
        assert log.dropped == 0
        assert "events_dropped_total" \
            not in registry.snapshot()["counter"]


# -- export round-trip --------------------------------------------------------


class TestExport:
    def test_jsonl_round_trip_preserves_report(self,
                                               traced_gamerqueen):
        sym, app_id, games = traced_gamerqueen
        sym.query(app_id, games[0])
        buffer = io.StringIO()
        count = dump_jsonl(sym.telemetry, buffer)
        assert count == len(sym.telemetry.tracer.spans) \
            + len(sym.telemetry.events.events) + 1
        buffer.seek(0)
        loaded = load_jsonl(buffer)
        assert render_report(loaded) == sym.telemetry.report()

    def test_loaded_spans_match_live_spans(self, traced_gamerqueen):
        sym, app_id, games = traced_gamerqueen
        sym.query(app_id, games[0])
        buffer = io.StringIO()
        dump_jsonl(sym.telemetry, buffer)
        buffer.seek(0)
        loaded = load_jsonl(buffer)
        live = [s.to_dict() for s in sym.telemetry.tracer.spans]
        assert loaded["spans"] == live
        assert loaded["metrics"] == sym.telemetry.metrics.snapshot()

    def test_histogram_buckets_round_trip(self, traced_gamerqueen):
        # Cumulative bucket counts ride through the JSONL metrics line
        # exactly — a loaded snapshot can answer "how many queries under
        # X ms" without the original samples.
        sym, app_id, games = traced_gamerqueen
        sym.query(app_id, games[0])
        loaded = load_jsonl(
            io.StringIO("\n".join(
                json.dumps(line)
                for line in telemetry_lines(sym.telemetry)))
        )
        live = sym.telemetry.metrics.snapshot()["histogram"]
        for name, summary in loaded["metrics"]["histogram"].items():
            assert summary["buckets"] == live[name]["buckets"]
            assert list(summary["buckets"])[-1] == "+Inf"

    def test_dropped_events_round_trip_into_report(self):
        telemetry = Telemetry()
        # Shrink the log so the run visibly saturates it.
        telemetry.events._events = deque(maxlen=2)
        for i in range(5):
            telemetry.events.emit("tick", n=i)
        buffer = io.StringIO()
        dump_jsonl(telemetry, buffer)
        buffer.seek(0)
        loaded = load_jsonl(buffer)
        assert loaded["events_dropped"] == 3
        assert ", 3 dropped" in render_report(loaded)
        assert render_report(loaded) == telemetry.report()
