"""Integration tests: the paper's scenarios end-to-end.

* §II-B/II-C — Ann's GamerQueen video-game store (primary inventory +
  focused review search + live pricing + ads + click monetization);
* §I — the wine connoisseur's monetized search vertical;
* Conclusions — usage logs feeding relevance signals back to the engine.
"""

import pytest

from repro.core.datasources import SourceKind
from repro.services.samples import PricingService

from tests.conftest import make_inventory_csv


class TestGamerQueenFullScenario:
    """The complete §II-B walkthrough on one platform instance."""

    @pytest.fixture()
    def scenario(self, symphony):
        sym = symphony
        sym.bus.register(PricingService(seed=5))
        ann = sym.register_designer("Ann")
        games = sym.web.entities["video_games"][:6]

        # 1. Register proprietary inventory data with Symphony.
        sym.upload_http(ann, "inventory.csv", make_inventory_csv(games),
                        "inventory", content_type="text/csv")

        # 2. Configure data sources.
        inventory = sym.add_proprietary_source(
            ann, "inventory",
            search_fields=("title", "producer", "description"),
        )
        reviews = sym.add_web_source(
            "Game reviews", "web",
            sites=("gamespot.com", "ign.com", "teamxbox.com"),
        )
        pricing = sym.add_service_source(
            "Live pricing", "pricing", "GET /prices/{sku}", "sku",
            item_fields=("sku", "price", "stock", "in_stock"),
            title_field="sku",
        )
        ads = sym.add_ad_source()
        advertiser = sym.ads.create_advertiser("GameCo", 50.0)
        sym.ads.create_campaign(
            advertiser.advertiser_id,
            [games[0], "game"], 0.40, "GameCo Megastore",
            "http://gameco.example",
        )

        # 3. Design the application via drag-and-drop.
        designer = sym.designer()
        session = designer.new_application("GamerQueen",
                                           ann.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, heading="Games", max_results=4,
            search_fields=("title", "producer", "description"),
        )
        session.add_hyperlink(slot, "title", href_field="detail_url",
                              font_weight="bold")
        session.add_image(slot, "image_url")
        session.add_text(slot, "description", color="#444")
        session.drag_source_onto_result_layout(
            slot, reviews.source_id, drive_fields=("title",),
            heading="Reviews from the web", max_results=2,
            query_suffix="review",
        )
        session.drag_source_onto_result_layout(
            slot, pricing.source_id, drive_fields=("title",),
            max_results=1,
        )
        session.drag_source_onto_app(ads.source_id,
                                     heading="Sponsored")
        assert session.validate() == []

        # 4. Host and publish.
        app_id = sym.host(session)
        snippet = sym.publish_embed(app_id, "http://gamerqueen.example")
        sym.publish_social(app_id)
        return sym, app_id, games, snippet

    def test_customer_query_returns_enriched_results(self, scenario):
        sym, app_id, games, __ = scenario
        response = sym.query(app_id, games[0], session_id="customer-1")
        assert response.views
        view = response.views[0]
        supplemental = list(view.supplemental.values())
        review_result = supplemental[0]
        pricing_result = supplemental[1]
        assert review_result.items, "focused review search must hit"
        assert all(
            item.get("site") in
            ("gamespot.com", "ign.com", "teamxbox.com")
            for item in review_result.items
        )
        assert pricing_result.items[0].fields["price"] > 0

    def test_html_is_complete_page_fragment(self, scenario):
        sym, app_id, games, __ = scenario
        response = sym.query(app_id, games[0])
        html = response.html
        assert html.count("symphony-result") >= 1
        assert "symphony-supplemental" in html
        assert "symphony-ads" in html
        assert "<img" in html

    def test_trace_shows_fig2_flow(self, scenario):
        sym, app_id, games, __ = scenario
        trace = sym.query(app_id, games[0]).trace
        names = [s.name for s in trace.stages]
        assert names == ["receive", "primary", "supplemental", "ads",
                         "merge+render", "respond"]
        supplemental = trace.stage("supplemental")
        primary = trace.stage("primary")
        assert supplemental.elapsed_ms > primary.elapsed_ms

    def test_embed_snippet_routes_to_app(self, scenario):
        sym, app_id, __, snippet = scenario
        resolved = sym.router.resolve(f"/apps/{app_id}/query",
                                      snippet.embed_key)
        assert resolved == app_id

    def test_monetization_cycle(self, scenario):
        sym, app_id, games, __ = scenario
        response = sym.query(app_id, games[0], session_id="c1")
        item_url = response.views[0].item.get("detail_url")
        sym.record_click(app_id, games[0], item_url, session_id="c1")
        if response.ads:
            ad = response.ads[0]
            sym.record_click(app_id, games[0], ad.url,
                             ad_id=ad.get("ad_id"))
            assert sym.designer_ad_earnings(app_id) > 0
        summary = sym.traffic_summary(app_id)
        assert summary.click_count >= 1
        assert "gamerqueen.example" in summary.clicks_by_site
        report = sym.referral_report(app_id)
        assert report.total_owed() > 0

    def test_cache_accelerates_repeat_queries(self, scenario):
        sym, app_id, games, __ = scenario
        cold = sym.query(app_id, games[1])
        warm = sym.query(app_id, games[1])
        assert warm.trace.cache_hits > 0
        assert warm.trace.total_ms() < cold.trace.total_ms()
        assert warm.html == cold.html

    def test_every_inventory_title_gets_reviews(self, scenario):
        sym, app_id, games, __ = scenario
        for game in games:
            response = sym.query(app_id, game)
            matching = [v for v in response.views
                        if v.item.get("title") == game]
            assert matching, game
            reviews = list(matching[0].supplemental.values())[0]
            assert reviews.items, f"no reviews for {game}"


class TestWineVerticalScenario:
    """§I: 'A wine connoisseur may create and embed in her web site a
    specialized search vertical... and may be able to monetize her
    efforts'."""

    @pytest.fixture()
    def scenario(self, symphony_small):
        sym = symphony_small
        connoisseur = sym.register_designer("Claire")
        wines = sym.web.entities["wine"][:6]
        rows = "name,region,notes\n" + "\n".join(
            f'{w},Region {i},"elegant {w} with long finish"'
            for i, w in enumerate(wines)
        )
        sym.upload_http(connoisseur, "cellar.csv", rows.encode(),
                        "cellar", content_type="text/csv")
        cellar = sym.add_proprietary_source(
            connoisseur, "cellar", search_fields=("name", "notes")
        )
        wine_web = sym.add_web_source(
            "Wine articles", "web",
            sites=("winespectator.example", "cellartracker.example"),
        )
        designer = sym.designer()
        session = designer.new_application(
            "Claire's Cellar", connoisseur.tenant.tenant_id
        )
        session.apply_template("storefront")
        slot = session.drag_source_onto_app(
            cellar.source_id, heading="From the cellar",
            search_fields=("name", "notes"), max_results=3,
        )
        session.add_hyperlink(slot, "name")
        session.add_text(slot, "notes", font_style="italic")
        session.drag_source_onto_result_layout(
            slot, wine_web.source_id, drive_fields=("name",),
            heading="Tasting notes from the web", max_results=2,
        )
        app_id = sym.host(session)
        return sym, app_id, wines

    def test_vertical_answers_wine_queries(self, scenario):
        sym, app_id, wines = scenario
        response = sym.query(app_id, wines[0])
        assert response.views
        assert response.views[0].item.get("name") == wines[0]
        supplemental = list(response.views[0].supplemental.values())[0]
        assert all(
            item.get("site") in ("winespectator.example",
                                 "cellartracker.example")
            for item in supplemental.items
        )

    def test_storefront_theme_applied(self, scenario):
        sym, app_id, wines = scenario
        html = sym.query(app_id, wines[0]).html
        assert "#b12704" in html  # storefront heading colour

    def test_referral_monetization(self, scenario):
        sym, app_id, wines = scenario
        response = sym.query(app_id, wines[0])
        supplemental = list(response.views[0].supplemental.values())[0]
        for item in supplemental.items:
            sym.record_click(app_id, wines[0], item.url)
        report = sym.referral_report(app_id, rate_per_click=0.02)
        assert report.total_owed() == pytest.approx(
            0.02 * len(supplemental.items)
        )


class TestLogFeedbackLoop:
    """Conclusions: app usage becomes engine-level relevance signal."""

    def test_community_clicks_change_general_ranking(self,
                                                     symphony_small):
        from repro.analytics import (LogAggregator,
                                     RelevanceSignalExporter)
        from repro.searchengine.engine import SearchOptions
        sym = symphony_small
        entity = sym.web.entities["video_games"][3]
        baseline = sym.engine.search("web", f'"{entity}"',
                                     SearchOptions(count=10))
        assert len(baseline.results) >= 2
        target = baseline.results[-1].url
        for i in range(8):
            sym.record_click("app-x", entity, target,
                             session_id=f"s{i}")
        profiles = LogAggregator(sym.engine.log).profiles().values()
        RelevanceSignalExporter(max_boost=3.0).apply_to_engine(
            sym.engine, profiles
        )
        boosted = sym.engine.search("web", f'"{entity}"',
                                    SearchOptions(count=10))
        score_of = lambda resp: next(  # noqa: E731
            r.score for r in resp.results if r.url == target
        )
        assert score_of(boosted) > score_of(baseline)
        assert boosted.urls().index(target) <= \
            baseline.urls().index(target)


class TestMultiTenantIsolation:
    def test_two_designers_same_table_name(self, symphony):
        sym = symphony
        ann = sym.register_designer("Ann")
        bea = sym.register_designer("Bea")
        games = sym.web.entities["video_games"]
        sym.upload_http(ann, "inv.csv",
                        make_inventory_csv(games[:2], with_urls=False),
                        "inventory", content_type="text/csv")
        sym.upload_http(bea, "inv.csv",
                        make_inventory_csv(games[2:4], with_urls=False),
                        "inventory", content_type="text/csv")
        ann_titles = {r.values["title"]
                      for r in ann.tenant.table("inventory")}
        bea_titles = {r.values["title"]
                      for r in bea.tenant.table("inventory")}
        assert ann_titles.isdisjoint(bea_titles)

    def test_sources_see_only_their_tenant_data(self, symphony):
        sym = symphony
        ann = sym.register_designer("Ann")
        bea = sym.register_designer("Bea")
        games = sym.web.entities["video_games"]
        sym.upload_http(ann, "inv.csv",
                        make_inventory_csv([games[0]], with_urls=False),
                        "inventory", content_type="text/csv")
        sym.upload_http(bea, "inv.csv",
                        make_inventory_csv([games[1]], with_urls=False),
                        "inventory", content_type="text/csv")
        ann_source = sym.add_proprietary_source(ann, "inventory",
                                                ("title",))
        from repro.core.datasources import SourceQuery
        result = ann_source.search(SourceQuery(games[1]))
        assert result.total_matches == 0


class TestSourceKindCoverage:
    def test_platform_exposes_every_source_kind(self, symphony):
        sym = symphony
        account = sym.register_designer("Ann")
        games = sym.web.entities["video_games"][:2]
        sym.upload_http(account, "inv.csv",
                        make_inventory_csv(games, with_urls=False),
                        "inventory", content_type="text/csv")
        sym.add_proprietary_source(account, "inventory", ("title",))
        for vertical in ("web", "image", "video", "news"):
            sym.add_web_source(f"{vertical} source", vertical)
        sym.bus.register(PricingService())
        sym.add_service_source("P", "pricing", "GET /prices/{sku}",
                               "sku")
        sym.add_ad_source()
        sym.add_customer_source()
        sym.add_federated_source("meta search")
        kinds = {sym.sources.get(sid).kind
                 for sid in sym.sources.ids()}
        assert kinds == set(SourceKind)
