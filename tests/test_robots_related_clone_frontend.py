"""Tests for robots.txt crawling, related searches, app clone/edit,
the service directory, and the hosting frontend."""

import pytest

from repro.core.frontend import HostingFrontend
from repro.core.runtime import RateLimiter
from repro.ingest.crawler import CrawlPolicy, Crawler
from repro.searchengine.logs import QueryEvent, QueryLog
from repro.searchengine.related import RelatedSearches
from repro.simweb.robots import parse_robots, robots_txt_for
from repro.util import SimClock


class TestRobotsParsing:
    def test_wildcard_section_only(self):
        rules = parse_robots(
            "User-agent: evilbot\nDisallow: /\n\n"
            "User-agent: *\nDisallow: /private/\nDisallow: /tmp/\n"
        )
        assert rules.disallow == ("/private/", "/tmp/")
        assert rules.allows("/public/page")
        assert not rules.allows("/private/secret")

    def test_comments_and_blanks_ignored(self):
        rules = parse_robots(
            "# comment\nUser-agent: *\n\nDisallow: /x/  # inline\n"
        )
        assert not rules.allows("/x/page")

    def test_empty_disallow_means_allow_all(self):
        rules = parse_robots("User-agent: *\nDisallow:\n")
        assert rules.allows("/anything")

    def test_blocks_everything(self):
        rules = parse_robots("User-agent: *\nDisallow: /\n")
        assert rules.blocks_everything
        assert not rules.allows("/any")

    def test_generated_robots_deterministic(self):
        assert robots_txt_for("a.example", 1) == \
            robots_txt_for("a.example", 1)
        assert "Disallow: /private/" in robots_txt_for("a.example", 1)


class TestCrawlerRobots:
    def test_fully_blocked_domain_yields_no_pages(self, small_web):
        """A domain whose robots.txt disallows everything is skipped."""
        blocked_domain = next(
            domain for domain in sorted(small_web.sites)
            if parse_robots(
                robots_txt_for(domain, 2010)
            ).blocks_everything
        )
        crawler = Crawler(small_web, clock=SimClock())
        seeds = [p.url for p in
                 small_web.pages_on(blocked_domain)[:3]]
        result = crawler.crawl(seeds, CrawlPolicy(
            max_pages=50, allowed_domains=(blocked_domain,),
        ))
        assert result.pages == []
        assert any("robots.txt" in reason
                   for __, reason in result.skipped)

    def test_robots_can_be_disabled(self, small_web):
        domain = sorted(small_web.sites)[0]
        crawler = Crawler(small_web, clock=SimClock())
        seeds = [p.url for p in small_web.pages_on(domain)[:3]]
        with_robots = crawler.crawl(seeds, CrawlPolicy(
            max_pages=50, allowed_domains=(domain,),
        ))
        without = Crawler(small_web, clock=SimClock()).crawl(
            seeds, CrawlPolicy(max_pages=50,
                               allowed_domains=(domain,),
                               respect_robots=False),
        )
        assert len(without.pages) >= len(with_robots.pages)

    def test_robots_fetched_once_per_domain(self, small_web):
        domain = sorted(small_web.sites)[0]
        clock = SimClock(start_ms=0)
        crawler = Crawler(small_web, clock=clock)
        seeds = [p.url for p in small_web.pages_on(domain)[:5]]
        crawler.crawl(seeds, CrawlPolicy(max_pages=10,
                                         allowed_domains=(domain,)))
        assert len(crawler._robots_cache) == 1


class TestRelatedSearches:
    def make_log(self):
        log = QueryLog()
        entries = [
            ("halo review", "s1"), ("halo trailer", "s1"),
            ("halo review", "s2"), ("halo walkthrough", "s2"),
            ("zelda review", "s3"), ("wine pairing", "s4"),
            ("halo review", "s5"),
        ]
        for i, (query, session) in enumerate(entries):
            log.log_query(QueryEvent(
                timestamp_ms=i, query=query, vertical="web",
                session_id=session,
            ))
        return log

    def test_term_overlap_relates(self):
        related = RelatedSearches(self.make_log())
        results = related.related("halo review")
        queries = [r.query for r in results]
        assert "halo trailer" in queries
        assert "halo walkthrough" in queries
        assert "wine pairing" not in queries

    def test_session_cooccurrence_boosts(self):
        related = RelatedSearches(self.make_log())
        results = {r.query: r.score
                   for r in related.related("halo review", count=10)}
        # trailer co-occurs in s1 with "halo review"; zelda review only
        # shares a term.
        assert results["halo trailer"] > results["zelda review"]

    def test_input_itself_excluded(self):
        related = RelatedSearches(self.make_log())
        assert all(r.query != "halo review"
                   for r in related.related("halo review"))

    def test_unknown_query_still_matches_by_terms(self):
        related = RelatedSearches(self.make_log())
        results = related.related("best halo game")
        assert any("halo" in r.query for r in results)

    def test_count_limits(self):
        related = RelatedSearches(self.make_log())
        assert len(related.related("halo review", count=1)) == 1

    def test_empty_log(self):
        related = RelatedSearches(QueryLog())
        assert related.related("anything") == []


class TestCloneAndEdit:
    def test_edit_roundtrip_preserves_definition(self, gamerqueen):
        symphony, app_id, __ = gamerqueen
        app = symphony.apps.get(app_id)
        session = symphony.designer().edit_application(app)
        rebuilt = session.build()
        assert rebuilt.to_dict() == app.to_dict()

    def test_edit_then_modify_updates_in_place(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        app = symphony.apps.get(app_id)
        session = symphony.designer().edit_application(app)
        session.apply_template("midnight")
        slot = session._slots[0]
        session.add_text(slot, "producer")
        new_id = symphony.host(session)
        assert new_id == app_id  # same identity, updated definition
        updated = symphony.apps.get(app_id)
        assert updated.theme == "midnight"
        response = symphony.query(app_id, games[0])
        assert "Studio" in response.html  # producer now rendered

    def test_clone_gets_fresh_ids(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        app = symphony.apps.get(app_id)
        clone_session = symphony.designer().clone_application(
            app, "GamerQueen Europe")
        clone = clone_session.build()
        assert clone.app_id != app.app_id
        assert clone.name == "GamerQueen Europe"
        original_ids = {b.binding_id for b in app.bindings}
        clone_ids = {b.binding_id for b in clone.bindings}
        assert original_ids.isdisjoint(clone_ids)

    def test_clone_executes_like_original(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        app = symphony.apps.get(app_id)
        clone_session = symphony.designer().clone_application(
            app, "Clone")
        clone_id = symphony.host(clone_session)
        original = symphony.query(app_id, games[0])
        cloned = symphony.query(clone_id, games[0])
        assert [v.item.title for v in original.views] == \
            [v.item.title for v in cloned.views]


class TestServiceDirectory:
    def test_soap_entry_has_wsdl(self, small_web):
        from repro.services.bus import ServiceBus
        from repro.services.samples import (PricingService,
                                            ReviewArchiveService)
        bus = ServiceBus()
        bus.register(PricingService())
        bus.register(ReviewArchiveService(web=small_web))
        soap_entry = bus.describe_service("review-archive")
        assert soap_entry["wsdl"]["operations"]["GetReviews"]
        rest_entry = bus.describe_service("pricing")
        assert "wsdl" not in rest_entry
        assert rest_entry["descriptor"].protocol == "rest"


class TestHostingFrontend:
    @pytest.fixture()
    def frontend_ctx(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        snippet = symphony.publish_embed(app_id,
                                         "http://gamerqueen.example")
        return symphony, app_id, games, snippet

    def test_successful_request(self, frontend_ctx):
        symphony, app_id, games, snippet = frontend_ctx
        response = symphony.frontend.handle(
            f"/apps/{app_id}/query",
            {"q": games[0], "key": snippet.embed_key},
        )
        assert response.ok
        assert "symphony-app" in response.body

    def test_unknown_app_404(self, frontend_ctx):
        symphony, *_ = frontend_ctx
        response = symphony.frontend.handle(
            "/apps/ghost/query", {"q": "x"})
        assert response.status == 404

    def test_bad_embed_key_403(self, frontend_ctx):
        symphony, app_id, games, __ = frontend_ctx
        response = symphony.frontend.handle(
            f"/apps/{app_id}/query",
            {"q": games[0], "key": "wrong"},
        )
        assert response.status == 403

    def test_missing_query_400(self, frontend_ctx):
        symphony, app_id, __, snippet = frontend_ctx
        response = symphony.frontend.handle(
            f"/apps/{app_id}/query",
            {"key": snippet.embed_key},
        )
        assert response.status == 400

    def test_bad_page_400(self, frontend_ctx):
        symphony, app_id, games, snippet = frontend_ctx
        response = symphony.frontend.handle(
            f"/apps/{app_id}/query",
            {"q": games[0], "key": snippet.embed_key,
             "page": "one"},
        )
        assert response.status == 400

    def test_rate_limited_429(self, frontend_ctx):
        symphony, app_id, games, snippet = frontend_ctx
        symphony.runtime.rate_limiter = RateLimiter(
            symphony.clock, max_requests=1, window_ms=3_600_000)
        params = {"q": games[0], "key": snippet.embed_key}
        first = symphony.frontend.handle(
            f"/apps/{app_id}/query", params)
        assert first.ok
        second = symphony.frontend.handle(
            f"/apps/{app_id}/query", params)
        assert second.status == 429

    def test_standalone_frontend(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        frontend = HostingFrontend(symphony.router, symphony.runtime)
        response = frontend.handle(f"/apps/{app_id}/query",
                                   {"q": games[0]})
        assert response.ok
