"""Tests for the query-execution runtime (Fig. 2)."""

import pytest

from repro.core.datasources import (
    DataSource,
    SourceItem,
    SourceKind,
    SourceQuery,
    SourceRegistry,
    SourceResult,
    CustomerProfileSource,
)
from repro.core.application import (
    ApplicationDefinition,
    ElementKind,
    LayoutElement,
    ResultLayout,
    SourceBinding,
    SourceRole,
    SourceSlot,
)
from repro.core.runtime import (
    ApplicationRegistry,
    QueryRequest,
    ResultCache,
    SymphonyRuntime,
)
from repro.errors import NotFoundError, ServiceError
from repro.searchengine.logs import QueryLog
from repro.util import SimClock


class StubSource(DataSource):
    """Programmable source for pipeline tests."""

    def __init__(self, source_id, items_for=None, fail=False,
                 latency_recorder=None):
        super().__init__(source_id, source_id, SourceKind.PROPRIETARY)
        self.items_for = items_for or {}
        self.fail = fail
        self.queries: list[str] = []

    def fields(self):
        return ["title", "url"]

    def search(self, query: SourceQuery) -> SourceResult:
        self.queries.append(query.text)
        if self.fail:
            raise ServiceError(f"{self.source_id} is down")
        items = self.items_for.get(query.text, ())
        return SourceResult(self.source_id, tuple(items[:query.count]),
                            len(items))


def make_item(title, url="", **fields):
    return SourceItem(item_id=title, title=title,
                      url=url or f"http://x.example/{title}",
                      fields=fields)


def build_app(children_bindings=(), customer=False, ads=False):
    bindings = [SourceBinding("bp", "primary", SourceRole.PRIMARY,
                              max_results=5)]
    child_slots = []
    for binding in children_bindings:
        bindings.append(binding)
        child_slots.append(SourceSlot(binding_id=binding.binding_id))
    if customer:
        bindings.append(SourceBinding("bc", "customer",
                                      SourceRole.CUSTOMER))
    slots = [SourceSlot(
        binding_id="bp", heading="Main",
        result_layout=ResultLayout((
            LayoutElement(ElementKind.TEXT, "title"),
        )),
        children=tuple(child_slots),
    )]
    if ads:
        bindings.append(SourceBinding("ba", "ads", SourceRole.ADS))
        slots.append(SourceSlot(binding_id="ba"))
    return ApplicationDefinition(
        app_id="app-1", name="Test", owner_tenant="t1",
        bindings=tuple(bindings), slots=tuple(slots),
    )


def make_runtime(sources, app, log=None, cache_enabled=True):
    registry = SourceRegistry()
    for source in sources:
        registry.add(source)
    apps = ApplicationRegistry()
    apps.register(app)
    return SymphonyRuntime(
        registry=registry, apps=apps, clock=SimClock(start_ms=0),
        log=log, cache_enabled=cache_enabled,
    )


class TestPipelineStages:
    def test_stage_sequence_matches_fig2(self):
        primary = StubSource("primary",
                             {"halo": [make_item("Halo")]})
        runtime = make_runtime([primary], build_app())
        response = runtime.handle_query(QueryRequest("app-1", "halo"))
        names = [stage.name for stage in response.trace.stages]
        assert names == ["receive", "primary", "supplemental",
                         "merge+render", "respond"]

    def test_primary_results_become_views(self):
        primary = StubSource("primary", {
            "halo": [make_item("Halo 1"), make_item("Halo 2")],
        })
        runtime = make_runtime([primary], build_app())
        response = runtime.handle_query(QueryRequest("app-1", "halo"))
        assert [v.item.title for v in response.views] == \
            ["Halo 1", "Halo 2"]
        assert "Halo 1" in response.html

    def test_supplemental_driven_by_primary_fields(self):
        primary = StubSource("primary", {
            "halo": [make_item("Halo Odyssey")],
        })
        supp = StubSource("reviews", {
            '"Halo Odyssey" review': [make_item("A review")],
        })
        binding = SourceBinding("bs", "reviews",
                                SourceRole.SUPPLEMENTAL,
                                drive_fields=("title",),
                                query_suffix="review")
        runtime = make_runtime([primary, supp],
                               build_app((binding,)))
        response = runtime.handle_query(QueryRequest("app-1", "halo"))
        assert supp.queries == ['"Halo Odyssey" review']
        view = response.views[0]
        assert view.supplemental["bs"].items[0].title == "A review"

    def test_supplemental_suffix_fallback_on_empty(self):
        primary = StubSource("primary", {
            "halo": [make_item("Halo Odyssey")],
        })
        supp = StubSource("reviews", {
            '"Halo Odyssey"': [make_item("General page")],
        })
        binding = SourceBinding("bs", "reviews",
                                SourceRole.SUPPLEMENTAL,
                                drive_fields=("title",),
                                query_suffix="review")
        runtime = make_runtime([primary, supp],
                               build_app((binding,)))
        response = runtime.handle_query(QueryRequest("app-1", "halo"))
        assert supp.queries == ['"Halo Odyssey" review',
                                '"Halo Odyssey"']
        assert response.views[0].supplemental["bs"].items

    def test_missing_drive_field_warns_and_continues(self):
        primary = StubSource("primary", {
            "halo": [SourceItem(item_id="x", title="")],  # empty title
        })
        supp = StubSource("reviews")
        binding = SourceBinding("bs", "reviews",
                                SourceRole.SUPPLEMENTAL,
                                drive_fields=("title",))
        runtime = make_runtime([primary, supp],
                               build_app((binding,)))
        response = runtime.handle_query(QueryRequest("app-1", "halo"))
        assert response.trace.warnings
        assert supp.queries == []
        assert response.views[0].supplemental["bs"].items == ()

    def test_supplemental_failure_isolated(self):
        primary = StubSource("primary", {
            "halo": [make_item("Halo")],
        })
        broken = StubSource("broken", fail=True)
        binding = SourceBinding("bs", "broken",
                                SourceRole.SUPPLEMENTAL,
                                drive_fields=("title",))
        runtime = make_runtime([primary, broken],
                               build_app((binding,)))
        response = runtime.handle_query(QueryRequest("app-1", "halo"))
        assert response.views  # app still answered
        assert any("broken" in w for w in response.trace.warnings)

    def test_unknown_app_raises(self):
        runtime = make_runtime([StubSource("primary")], build_app())
        with pytest.raises(NotFoundError):
            runtime.handle_query(QueryRequest("ghost", "halo"))

    def test_total_time_is_sum_of_stages(self):
        primary = StubSource("primary", {"halo": [make_item("Halo")]})
        runtime = make_runtime([primary], build_app())
        trace = runtime.handle_query(
            QueryRequest("app-1", "halo")
        ).trace
        assert trace.total_ms() == pytest.approx(
            sum(s.elapsed_ms for s in trace.stages)
        )

    def test_clock_advances_with_pipeline(self):
        primary = StubSource("primary", {"halo": [make_item("Halo")]})
        runtime = make_runtime([primary], build_app())
        before = runtime.clock.now_ms
        runtime.handle_query(QueryRequest("app-1", "halo"))
        assert runtime.clock.now_ms > before


class TestCustomerRewrite:
    def make(self):
        primary = StubSource("primary")
        customer = CustomerProfileSource("customer", "Customers")
        customer.set_profile("u1", ("rpg",))
        runtime = make_runtime(
            [primary, customer], build_app(customer=True)
        )
        return runtime, primary

    def test_rewrite_applied_for_known_customer(self):
        runtime, primary = self.make()
        runtime.handle_query(QueryRequest("app-1", "halo",
                                          customer_id="u1"))
        assert "rpg" in primary.queries[0]

    def test_no_rewrite_for_unknown_customer(self):
        runtime, primary = self.make()
        runtime.handle_query(QueryRequest("app-1", "halo",
                                          customer_id="u2"))
        assert primary.queries[0] == "halo"

    def test_rewrite_stage_present(self):
        runtime, __ = self.make()
        trace = runtime.handle_query(
            QueryRequest("app-1", "halo", customer_id="u1")
        ).trace
        assert trace.stage("customer-rewrite")


class TestCaching:
    def make(self, cache_enabled=True):
        primary = StubSource("primary", {"halo": [make_item("Halo")]})
        runtime = make_runtime([primary], build_app(),
                               cache_enabled=cache_enabled)
        return runtime, primary

    def test_repeat_query_served_from_cache(self):
        runtime, primary = self.make()
        runtime.handle_query(QueryRequest("app-1", "halo"))
        response = runtime.handle_query(QueryRequest("app-1", "halo"))
        assert len(primary.queries) == 1
        assert response.trace.cache_hits == 1
        assert response.views[0].item.title == "Halo"

    def test_cache_disabled_queries_every_time(self):
        runtime, primary = self.make(cache_enabled=False)
        runtime.handle_query(QueryRequest("app-1", "halo"))
        runtime.handle_query(QueryRequest("app-1", "halo"))
        assert len(primary.queries) == 2

    def test_cached_repeat_is_faster(self):
        runtime, __ = self.make()
        first = runtime.handle_query(QueryRequest("app-1", "halo"))
        second = runtime.handle_query(QueryRequest("app-1", "halo"))
        assert second.trace.total_ms() < first.trace.total_ms()

    def test_ttl_expiry(self):
        runtime, primary = self.make()
        runtime.handle_query(QueryRequest("app-1", "halo"))
        runtime.clock.advance(runtime.cache.ttl_ms + 1)
        runtime.handle_query(QueryRequest("app-1", "halo"))
        assert len(primary.queries) == 2

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1, now_ms=0)
        cache.put("b", 2, now_ms=0)
        cache.get("a", now_ms=0)   # refresh a
        cache.put("c", 3, now_ms=0)  # evicts b
        assert cache.get("b", now_ms=0) is None
        assert cache.get("a", now_ms=0) == 1
        assert len(cache) == 2

    def test_put_sweeps_expired_entries(self):
        # Expired entries must not linger just because their keys are
        # never re-read: any put prunes them.
        cache = ResultCache(max_entries=10, ttl_ms=100)
        cache.put("old-1", 1, now_ms=0)
        cache.put("old-2", 2, now_ms=0)
        cache.put("fresh", 3, now_ms=200)
        assert len(cache) == 1
        assert cache.get("fresh", now_ms=200) == 3

    def test_ttl_sweep_protects_live_entries_from_lru(self):
        # TTL-dead entries are swept *before* the LRU cap is applied,
        # so stale junk can never push a live entry out.
        cache = ResultCache(max_entries=2, ttl_ms=100)
        cache.put("dead", 1, now_ms=0)
        cache.put("live", 2, now_ms=150)
        cache.put("newer", 3, now_ms=200)
        # Without the sweep, the cap would have evicted "live" (oldest
        # by insertion) while the expired "dead" still counted.
        assert cache.get("live", now_ms=200) == 2
        assert cache.get("newer", now_ms=200) == 3
        assert cache.get("dead", now_ms=200) is None


class TestLoggingIntegration:
    def test_app_query_logged(self):
        log = QueryLog()
        primary = StubSource("primary", {"halo": [make_item("Halo")]})
        runtime = make_runtime([primary], build_app(), log=log)
        runtime.handle_query(QueryRequest("app-1", "halo",
                                          session_id="s1"))
        event = log.queries[-1]
        assert event.app_id == "app-1"
        assert event.vertical == "app"
        assert event.session_id == "s1"
        assert event.result_urls


class TestApplicationRegistry:
    def test_register_validates(self):
        apps = ApplicationRegistry()
        bad = ApplicationDefinition(app_id="a", name="n",
                                    owner_tenant="t")
        with pytest.raises(Exception):
            apps.register(bad)

    def test_unregister(self):
        apps = ApplicationRegistry()
        apps.register(build_app())
        apps.unregister("app-1")
        with pytest.raises(NotFoundError):
            apps.get("app-1")
        with pytest.raises(NotFoundError):
            apps.unregister("app-1")

    def test_trace_describe_readable(self):
        primary = StubSource("primary", {"halo": [make_item("Halo")]})
        runtime = make_runtime([primary], build_app())
        trace = runtime.handle_query(
            QueryRequest("app-1", "halo")
        ).trace
        text = trace.describe()
        assert "receive" in text and "TOTAL" in text
