"""Tests for the data-source adapters and registry."""

import pytest

from repro.core.datasources import (
    AdSource,
    CustomerProfileSource,
    ProprietaryTableSource,
    ServiceSource,
    SourceKind,
    SourceQuery,
    SourceRegistry,
    WebSearchSource,
)
from repro.errors import ConfigurationError, DuplicateError, NotFoundError
from repro.services.ads import AdService
from repro.services.bus import ServiceBus
from repro.services.samples import PricingService, ReviewArchiveService
from repro.storage.records import FieldSpec, FieldType, RecordTable, Schema


@pytest.fixture()
def inventory_table():
    schema = Schema((
        FieldSpec("title", FieldType.STRING),
        FieldSpec("producer", FieldType.STRING),
        FieldSpec("description", FieldType.TEXT),
        FieldSpec("price", FieldType.FLOAT),
    ))
    table = RecordTable("inventory", schema, ("title",))
    rows = [
        ("Halo Odyssey", "Bungie", "classic shooter campaign", "49.99"),
        ("Zelda Legends", "Nintendo", "adventure quest epic", "39.99"),
        ("Braid Arena", "NumberNone", "puzzle platformer gem", "19.99"),
        ("Halo Tactics", "Bungie", "strategy spin-off", "29.99"),
    ]
    for title, producer, description, price in rows:
        table.insert({"title": title, "producer": producer,
                      "description": description, "price": price})
    return table


class TestProprietarySource:
    def make(self, table, fields=("title", "producer", "description")):
        return ProprietaryTableSource("src-1", "Inventory", table, fields)

    def test_fields_are_schema_fields(self, inventory_table):
        source = self.make(inventory_table)
        assert source.fields() == ["title", "producer", "description",
                                   "price"]

    def test_unknown_search_field_rejected(self, inventory_table):
        with pytest.raises(ConfigurationError):
            self.make(inventory_table, fields=("nope",))

    def test_search_by_title(self, inventory_table):
        source = self.make(inventory_table)
        result = source.search(SourceQuery("halo", count=10))
        titles = {item.get("title") for item in result.items}
        assert titles == {"Halo Odyssey", "Halo Tactics"}

    def test_search_by_producer(self, inventory_table):
        source = self.make(inventory_table)
        result = source.search(SourceQuery("nintendo"))
        assert result.items[0].get("title") == "Zelda Legends"

    def test_search_fields_config_narrows(self, inventory_table):
        source = self.make(inventory_table, fields=("title",))
        result = source.search(SourceQuery("bungie"))
        assert result.total_matches == 0

    def test_context_overrides_search_fields(self, inventory_table):
        source = self.make(inventory_table, fields=("title",))
        result = source.search(SourceQuery(
            "bungie", context={"search_fields": ["producer"]}
        ))
        assert result.total_matches == 2

    def test_and_relaxes_to_or_when_empty(self, inventory_table):
        source = self.make(inventory_table)
        # "halo zelda" matches nothing conjunctively.
        result = source.search(SourceQuery("halo zelda"))
        assert result.total_matches >= 3

    def test_count_limits_items_not_total(self, inventory_table):
        source = self.make(inventory_table)
        result = source.search(SourceQuery("halo", count=1))
        assert len(result.items) == 1
        assert result.total_matches == 2

    def test_index_refreshes_after_insert(self, inventory_table):
        source = self.make(inventory_table)
        assert source.search(SourceQuery("myst")).total_matches == 0
        inventory_table.insert({"title": "Myst Returns",
                                "producer": "Cyan",
                                "description": "puzzle island",
                                "price": "9.99"})
        assert source.search(SourceQuery("myst")).total_matches == 1

    def test_index_refreshes_after_update(self, inventory_table):
        source = self.make(inventory_table)
        record = inventory_table.find("title", "Braid Arena")[0]
        inventory_table.update(record.record_id,
                               {"title": "Renamed Gem"})
        assert source.search(SourceQuery("braid")).total_matches == 0
        assert source.search(SourceQuery("renamed")).total_matches == 1

    def test_items_carry_full_record_fields(self, inventory_table):
        source = self.make(inventory_table)
        item = source.search(SourceQuery("braid")).items[0]
        assert item.fields["price"] == 19.99


class TestWebSource:
    def test_vertical_mapping(self, engine):
        for vertical, kind in (("web", SourceKind.WEB),
                               ("image", SourceKind.IMAGE),
                               ("video", SourceKind.VIDEO),
                               ("news", SourceKind.NEWS)):
            source = WebSearchSource(f"s-{vertical}", "n", engine,
                                     vertical)
            assert source.kind == kind

    def test_unknown_vertical(self, engine):
        with pytest.raises(ConfigurationError):
            WebSearchSource("s", "n", engine, "maps")

    def test_site_restriction_applies(self, engine, small_web):
        entity = small_web.entities["video_games"][0]
        source = WebSearchSource("s", "n", engine, "web",
                                 sites=("gamespot.com",))
        result = source.search(SourceQuery(f'"{entity}"'))
        assert result.items
        assert all(item.get("site") == "gamespot.com"
                   for item in result.items)

    def test_fields_contract(self, engine):
        source = WebSearchSource("s", "n", engine, "web")
        assert source.fields() == ["title", "url", "snippet", "site"]

    def test_app_id_threaded_to_log(self, small_web):
        from repro.searchengine.engine import build_engine
        private_engine = build_engine(small_web, use_authority=False)
        source = WebSearchSource("s", "n", private_engine, "web")
        source.search(SourceQuery("game", context={"app_id": "app-9"}))
        assert private_engine.log.queries[-1].app_id == "app-9"


class TestServiceSource:
    def make_bus(self, small_web=None):
        bus = ServiceBus()
        bus.register(PricingService(seed=1))
        if small_web is not None:
            bus.register(ReviewArchiveService(web=small_web))
        return bus

    def test_rest_path_param_substitution(self):
        bus = self.make_bus()
        source = ServiceSource(
            "s", "Pricing", bus, "pricing", "GET /prices/{sku}", "sku",
            item_fields=("sku", "price", "stock"), title_field="sku",
        )
        result = source.search(SourceQuery("Halo Odyssey"))
        assert result.total_matches == 1
        assert result.items[0].fields["price"] > 0

    def test_soap_query_param(self, small_web):
        bus = self.make_bus(small_web)
        entity = small_web.entities["video_games"][0]
        source = ServiceSource(
            "s", "Reviews", bus, "review-archive", "GetReviews",
            "entity", item_fields=("source", "score"),
            title_field="source",
        )
        result = source.search(SourceQuery(entity, count=5))
        assert 1 <= len(result.items) <= 5
        assert all("score" in item.fields for item in result.items)

    def test_list_response_fans_out(self, small_web):
        bus = self.make_bus(small_web)
        source = ServiceSource(
            "s", "Reviews", bus, "review-archive", "GetReviews",
            "entity",
        )
        entity = small_web.entities["video_games"][0]
        result = source.search(SourceQuery(entity, count=100))
        assert result.total_matches > 1  # unwrapped the reviews list

    def test_extra_params_passed(self):
        bus = self.make_bus()
        source = ServiceSource(
            "s", "Pricing", bus, "pricing", "GET /prices/{sku}", "sku",
            extra_params={"currency": "EUR"},
        )
        item = source.search(SourceQuery("halo")).items[0]
        assert item.fields["currency"] == "EUR"


class TestAdSource:
    def make(self):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 10.0)
        ads.create_campaign(advertiser.advertiser_id, ["game"],
                            0.25, "Ad Head", "http://ad.example")
        return AdSource("ads-1", "Ads", ads, max_ads=2), ads

    def test_matching_ads_returned(self):
        source, __ = self.make()
        result = source.search(SourceQuery(
            "game", context={"app_id": "app-1"}
        ))
        assert result.items[0].title == "Ad Head"
        assert result.items[0].fields["is_ad"] is True

    def test_no_match_no_ads(self):
        source, __ = self.make()
        assert source.search(SourceQuery("wine")).items == ()

    def test_max_ads_cap(self):
        source, ads = self.make()
        advertiser = ads.create_advertiser("B", 10.0)
        for i in range(4):
            ads.create_campaign(advertiser.advertiser_id, ["game"],
                                0.10 + i / 100, f"H{i}",
                                "http://b.example")
        result = source.search(SourceQuery("game", count=10))
        assert len(result.items) == 2


class TestCustomerSource:
    def test_rewrite_with_profile(self):
        source = CustomerProfileSource("c", "Customers")
        source.set_profile("u1", ("rpg", "strategy"))
        rewritten = source.rewrite("halo", "u1")
        assert "rpg" in rewritten and "halo" in rewritten

    def test_rewrite_without_profile_is_identity(self):
        source = CustomerProfileSource("c", "Customers")
        assert source.rewrite("halo", "unknown") == "halo"
        assert source.rewrite("halo", None) == "halo"

    def test_rewritten_query_parses(self):
        from repro.searchengine.query import parse_query
        source = CustomerProfileSource("c", "Customers")
        source.set_profile("u1", ("rpg",))
        parse_query(source.rewrite("halo game", "u1"))  # must not raise

    def test_search_returns_profile(self):
        source = CustomerProfileSource("c", "Customers")
        source.set_profile("u1", ("rpg",))
        result = source.search(SourceQuery("u1"))
        assert result.items[0].fields["preference_terms"] == "rpg"
        assert source.search(SourceQuery("u2")).total_matches == 0


class TestRegistry:
    def test_add_get_remove(self):
        registry = SourceRegistry()
        source = CustomerProfileSource("c1", "C")
        registry.add(source)
        assert registry.get("c1") is source
        registry.remove("c1")
        with pytest.raises(NotFoundError):
            registry.get("c1")

    def test_duplicate_rejected(self):
        registry = SourceRegistry()
        registry.add(CustomerProfileSource("c1", "C"))
        with pytest.raises(DuplicateError):
            registry.add(CustomerProfileSource("c1", "C2"))

    def test_by_kind(self, engine):
        registry = SourceRegistry()
        registry.add(CustomerProfileSource("c1", "C"))
        registry.add(WebSearchSource("w1", "W", engine, "web"))
        assert [s.source_id
                for s in registry.by_kind(SourceKind.WEB)] == ["w1"]
