"""Experiment X9 — resilience overhead on the clean query path.

Runs the same cold-query workload through two otherwise identical
platforms — one with resilience disabled and one with deadlines,
deterministic retry, and hedging enabled — under zero injected faults,
and compares median wall-clock latency per query. With nothing failing,
the resilience layer must be almost free: deadlines are integer
comparisons against the sim clock, the retrier adds one closure per
source call, and hedging never fires on the zero-latency clean path.

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_resilience.py``), recording the
  ``x9_resilience_overhead`` artifact; or
* standalone as a CI smoke check::

      PYTHONPATH=src python benchmarks/bench_resilience.py --check 0.10

  which exits non-zero when the resilient run regresses more than the
  threshold.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time


def _time_round(symphony, app_id, queries) -> list:
    """Cold-query wall times (ms) for one pass over ``queries``."""
    timings = []
    for query in queries:
        symphony.runtime.cache.clear()
        start = time.perf_counter()
        symphony.query(app_id, query, session_id="x9")
        timings.append((time.perf_counter() - start) * 1000.0)
    return timings


def measure_overhead(web, rounds: int = 10, n_queries: int = 4) -> dict:
    """Build baseline + resilient platforms on ``web``, compare them."""
    from benchmarks.conftest import build_gamerqueen
    from repro.core.platform import Symphony

    platforms = {}
    # Telemetry is on for BOTH platforms so its (separately budgeted,
    # see X8) cost cancels out and the delta isolates the resilience
    # layer — and so the retries counter can witness the clean path.
    for label, resilience in (("baseline", None), ("resilient", True)):
        symphony = Symphony(web=web, use_authority=False,
                            telemetry=True, resilience=resilience)
        app_id, games = build_gamerqueen(
            symphony, designer_name=f"X9-{label}",
            table_name=f"x9_{label}", n_supplemental=1,
        )
        platforms[label] = (symphony, app_id, games[:n_queries])

    # Warm BOTH platforms before timing either, so one-time costs
    # (lazy imports, allocator growth) don't skew the comparison; then
    # interleave the timed rounds so slow drift (JIT-less allocator
    # behavior, CPU frequency, noisy neighbors) hits both sides alike
    # rather than biasing whichever platform runs last.
    for label, (symphony, app_id, queries) in platforms.items():
        _time_round(symphony, app_id, queries)
    timings = {label: [] for label in platforms}
    for __ in range(rounds):
        for label, (symphony, app_id, queries) in platforms.items():
            timings[label].extend(_time_round(symphony, app_id, queries))
    results = {label: statistics.median(values)
               for label, values in timings.items()}
    resilient = platforms["resilient"][0]
    # Sanity: the clean path must not have burned budget on recovery.
    results["retries"] = int(
        resilient.telemetry.metrics.counter("retries_total").value
    )
    results["overhead"] = (
        results["resilient"] / results["baseline"] - 1.0
        if results["baseline"] > 0 else 0.0
    )
    return results


def format_artifact(result: dict, threshold: float) -> str:
    verdict = ("PASS" if result["overhead"] <= threshold
               else "FAIL")
    return "\n".join([
        "X9 — resilience overhead (resilient vs baseline, no faults)",
        "",
        f"  baseline median  : {result['baseline']:8.3f} ms/query",
        f"  resilient median : {result['resilient']:8.3f} ms/query",
        f"  overhead         : {result['overhead'] * 100:+8.1f} %"
        f"   (threshold {threshold * 100:.0f} %)",
        f"  clean-path retries: {result['retries']} (must be 0)",
        "",
        f"  {verdict}: deadlines, retry, and hedging "
        f"{'stay' if verdict == 'PASS' else 'DO NOT stay'} within "
        "budget on the fault-free Fig. 2 pipeline",
    ])


def test_resilience_overhead(bench_web):
    """Pytest entry point: record the artifact, enforce the budget."""
    from benchmarks.conftest import record_artifact

    threshold = 0.10
    result = measure_overhead(bench_web, rounds=10)
    record_artifact("x9_resilience_overhead",
                    format_artifact(result, threshold))
    assert result["retries"] == 0
    assert result["overhead"] <= threshold


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="resilience clean-path overhead smoke check"
    )
    parser.add_argument("--check", type=float, default=0.10,
                        help="max allowed overhead fraction "
                             "(default 0.10)")
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing benchmarks/artifacts/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root))
    from repro.simweb.generator import WebGenerator, WebSpec

    spec = WebSpec(seed=args.seed,
                   topics=("video_games", "wine", "news"),
                   extra_sites_per_topic=1, pages_per_site=8,
                   images_per_site=3, videos_per_site=2,
                   news_per_site=4)
    web = WebGenerator(spec).build()
    result = measure_overhead(web, rounds=args.rounds)
    text = format_artifact(result, args.check)
    print(text)
    if not args.no_artifact:
        artifact_dir = repo_root / "benchmarks" / "artifacts"
        artifact_dir.mkdir(exist_ok=True)
        (artifact_dir / "x9_resilience_overhead.txt").write_text(
            text + "\n", encoding="utf-8"
        )
    return 0 if result["overhead"] <= args.check else 1


if __name__ == "__main__":
    sys.exit(main())
