"""Experiment X8 — telemetry overhead on the Fig. 2 query pipeline.

Runs the same cold-query workload through two otherwise identical
platforms — one with telemetry disabled (the default null instruments)
and one with full tracing/metrics/events enabled — and compares
median wall-clock latency per query. The instrumented run must stay
within a bounded regression of the uninstrumented one: the null-object
hot path is the design contract that makes telemetry safe to ship
enabled-by-default in development deployments.

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_telemetry_overhead.py``), recording the
  ``x8_telemetry_overhead`` artifact; or
* standalone as a CI smoke check::

      PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py \
          --check 0.25

  which exits non-zero when the traced run regresses more than the
  threshold.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time


def _median_query_ms(symphony, app_id, queries, rounds: int) -> float:
    """Median cold-query wall time (ms) over rounds × queries."""
    timings = []
    for __ in range(rounds):
        for query in queries:
            symphony.runtime.cache.clear()
            start = time.perf_counter()
            symphony.query(app_id, query, session_id="x8")
            timings.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(timings)


def measure_overhead(web, rounds: int = 5, n_queries: int = 4) -> dict:
    """Build untraced + traced platforms on ``web`` and compare them."""
    from repro.core.platform import Symphony
    from benchmarks.conftest import build_gamerqueen

    platforms = {}
    for label, telemetry in (("untraced", None), ("traced", True)):
        symphony = Symphony(web=web, use_authority=False,
                            telemetry=telemetry)
        app_id, games = build_gamerqueen(
            symphony, designer_name=f"X8-{label}",
            table_name=f"x8_{label}", n_supplemental=1,
        )
        platforms[label] = (symphony, app_id, games[:n_queries])

    # Warm BOTH platforms before timing either, so one-time costs
    # (lazy imports, allocator growth) don't inflate whichever
    # platform happens to be measured first and skew the comparison.
    results = {}
    for label, (symphony, app_id, queries) in platforms.items():
        _median_query_ms(symphony, app_id, queries, rounds=1)
    for label, (symphony, app_id, queries) in platforms.items():
        results[label] = _median_query_ms(symphony, app_id, queries,
                                          rounds=rounds)
    traced_symphony = platforms["traced"][0]
    results["spans"] = len(traced_symphony.telemetry.tracer.spans)
    results["events"] = len(traced_symphony.telemetry.events.events)
    results["overhead"] = (
        results["traced"] / results["untraced"] - 1.0
        if results["untraced"] > 0 else 0.0
    )
    return results


def format_artifact(result: dict, threshold: float) -> str:
    verdict = ("PASS" if result["overhead"] <= threshold
               else "FAIL")
    return "\n".join([
        "X8 — telemetry overhead (traced vs untraced cold queries)",
        "",
        f"  untraced median : {result['untraced']:8.3f} ms/query",
        f"  traced median   : {result['traced']:8.3f} ms/query",
        f"  overhead        : {result['overhead'] * 100:+8.1f} %"
        f"   (threshold {threshold * 100:.0f} %)",
        f"  spans recorded  : {result['spans']}",
        f"  events recorded : {result['events']}",
        "",
        f"  {verdict}: tracing, metrics, and the event log "
        f"{'stay' if verdict == 'PASS' else 'DO NOT stay'} within "
        "budget on the Fig. 2 pipeline",
    ])


def test_telemetry_overhead(bench_web):
    """Pytest entry point: record the artifact, enforce the budget."""
    from benchmarks.conftest import record_artifact

    threshold = 0.25
    result = measure_overhead(bench_web, rounds=5)
    record_artifact("x8_telemetry_overhead",
                    format_artifact(result, threshold))
    assert result["spans"] > 0
    assert result["overhead"] <= threshold


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="telemetry overhead smoke check"
    )
    parser.add_argument("--check", type=float, default=0.25,
                        help="max allowed overhead fraction "
                             "(default 0.25)")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing benchmarks/artifacts/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root))
    from repro.simweb.generator import WebGenerator, WebSpec

    # A moderate web keeps the smoke check fast while still exercising
    # the full pipeline (primary + supplemental + cache + renderer).
    spec = WebSpec(seed=args.seed,
                   topics=("video_games", "wine", "news"),
                   extra_sites_per_topic=1, pages_per_site=8,
                   images_per_site=3, videos_per_site=2,
                   news_per_site=4)
    web = WebGenerator(spec).build()
    result = measure_overhead(web, rounds=args.rounds)
    text = format_artifact(result, args.check)
    print(text)
    if not args.no_artifact:
        artifact_dir = repo_root / "benchmarks" / "artifacts"
        artifact_dir.mkdir(exist_ok=True)
        (artifact_dir / "x8_telemetry_overhead.txt").write_text(
            text + "\n", encoding="utf-8"
        )
    return 0 if result["overhead"] <= args.check else 1


if __name__ == "__main__":
    sys.exit(main())
