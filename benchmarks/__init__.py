"""Benchmark harness package (one module per paper artifact)."""
