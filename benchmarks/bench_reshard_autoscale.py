"""Experiment X11 — autoscaler shedding latency on a hot shard.

Drives the control plane through the two remediation rungs of its
escalation ladder on a 2-shard cluster and verifies the ISSUE's
acceptance bars:

* slow replica — one replica of shard 0 starts serving every read
  ~90 ms late; the autoscaler adds a replica, hedged reads route
  around the slow node, and the shard's latency collapses;
* overloaded shard — every replica of shard 0 slows in proportion to
  the shard's document count; replicas are already at the policy
  ceiling, so the autoscaler splits the shard, the handoff halves its
  load, and the latency drops back inside the dead band;
* convergence — once remediated, the final ticks produce no further
  scaling actions (hysteresis + cooldown prevent flapping);
* overhead — a cluster with an idle control plane installed answers
  queries within a few percent of a plain cluster (wall-clock).

Latencies are simulated-clock milliseconds from the cluster response,
so the scenario is deterministic; only the overhead section uses
wall-clock timings.

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_reshard_autoscale.py``), recording the
  ``x11_reshard_autoscale`` artifact; or
* standalone as a CI smoke check::

      PYTHONPATH=src python benchmarks/bench_reshard_autoscale.py \
          --check 0.05 --no-artifact

  which exits non-zero when either remediation fails to shed latency,
  the final ticks still see scaling actions, or the clean-path
  overhead exceeds the threshold.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time

QUERIES = ("news", "game", "travel", "wine review", "video", "classic")
TICKS = 30
BASELINE_TICKS = 3          # ticks 0-2: clean cluster, no faults
OVERLOAD_TICK = 13          # phase 2 begins: whole shard overloaded
SLOW_NODE_MS = 90.0         # phase 1: one replica serves this late
QUIET_TICKS = 5             # final window that must see no actions
LATENCY_HIGH_MS = 40.0
LATENCY_LOW_MS = 2.0


def _build_cluster(web, telemetry=None, hedge=None, clock=None):
    from repro.cluster import ClusterConfig, build_clustered_engine

    return build_clustered_engine(
        web,
        config=ClusterConfig(num_shards=2, replicas_per_shard=1),
        clock=clock, telemetry=telemetry, hedge=hedge,
    )


def run_autoscale_scenario(web) -> dict:
    """Tick the autoscaler through both remediation rungs."""
    from repro.controlplane import (
        Autoscaler,
        AutoscalerPolicy,
        ShardLifecycleManager,
    )
    from repro.resilience.hedging import HedgePolicy
    from repro.telemetry import Telemetry
    from repro.util import SimClock

    clock = SimClock()
    telemetry = Telemetry(clock=clock)
    engine = _build_cluster(
        web, telemetry=telemetry, clock=clock,
        hedge=HedgePolicy(latency_quantile=0.5, min_observations=8,
                          fallback_threshold_ms=25.0),
    )
    # Size handoff batches to the corpus so the split completes in a
    # handful of ticks regardless of the web spec driving the run.
    batch = max(64, engine.shard_doc_count(0) // 8)
    lifecycle = ShardLifecycleManager(engine, telemetry=telemetry,
                                      batch_size=batch)
    policy = AutoscalerPolicy(
        latency_high_ms=LATENCY_HIGH_MS, latency_low_ms=LATENCY_LOW_MS,
        breach_rounds=2, cooldown_ticks=2, min_replicas=1,
        max_replicas=2, max_shards=4, split_min_docs=1,
        merge_max_docs=0,
    )
    autoscaler = Autoscaler(engine, lifecycle, telemetry=telemetry,
                            policy=policy)
    # Overload magnitude scales with the hot shard's document count so
    # a split (which halves the shard) genuinely sheds the latency.
    overload_per_doc = (1.5 * (LATENCY_HIGH_MS - 15.0)
                        / engine.shard_doc_count(0))

    def drain(replica):
        while replica.take_latency_ms() > 0:
            pass

    rows = []
    for tick in range(TICKS):
        # Re-arm the fault each tick at the *current* magnitude: drain
        # whatever the last tick left queued, then queue enough delays
        # to cover every attempt (stats + exec + hedge backups) this
        # tick, so stale magnitudes never outlive a topology change.
        hot = engine.groups[0]
        for replica in hot.replicas:
            drain(replica)
        if tick >= OVERLOAD_TICK:
            spike = overload_per_doc * engine.shard_doc_count(0)
            for replica in hot.replicas:
                replica.inject_latency(spike, count=32)
        elif tick >= BASELINE_TICKS:
            hot.replicas[0].inject_latency(SLOW_NODE_MS, count=32)
        elapsed = [engine.search("web", q).elapsed_ms
                   for q in QUERIES]
        decision = autoscaler.tick()
        rows.append({
            "tick": tick,
            "mean_ms": statistics.fmean(elapsed),
            "max_ms": max(elapsed),
            "action": decision.action,
            "reason": decision.reason,
            "acted": decision.acted,
            "shards": engine.num_shards,
            "hot_replicas": len(engine.groups[0].replicas),
        })

    def phase_mean(ticks):
        return statistics.fmean(rows[t]["mean_ms"] for t in ticks)

    actions = [(r["tick"], r["action"]) for r in rows if r["acted"]]
    slow_onset = phase_mean(range(BASELINE_TICKS, BASELINE_TICKS + 2))
    slow_settled = phase_mean(range(OVERLOAD_TICK - 3, OVERLOAD_TICK))
    overload_onset = phase_mean(range(OVERLOAD_TICK, OVERLOAD_TICK + 2))
    settled = phase_mean(range(TICKS - QUIET_TICKS, TICKS))
    return {
        "rows": rows,
        "actions": actions,
        "baseline_ms": phase_mean(range(BASELINE_TICKS)),
        "slow_onset_ms": slow_onset,
        "slow_settled_ms": slow_settled,
        "overload_onset_ms": overload_onset,
        "settled_ms": settled,
        "quiet": not any(r["acted"]
                         for r in rows[TICKS - QUIET_TICKS:]),
        "shards": engine.num_shards,
        "topology_version": engine.topology_version,
        "reshards": len(
            telemetry.events.by_kind("reshard.complete")
        ),
    }


def _time_round(engine, queries) -> list:
    timings = []
    for query in queries:
        start = time.perf_counter()
        engine.search("web", query)
        timings.append((time.perf_counter() - start) * 1000.0)
    return timings


def measure_overhead(web, rounds: int = 12) -> dict:
    """Twin clusters, interleaved rounds — the delta isolates the cost
    of having an (idle) control plane installed on the query path."""
    from repro.cluster import ClusterConfig, build_clustered_engine
    from repro.controlplane import Autoscaler, ShardLifecycleManager

    engines = {}
    for label in ("plain", "controlplane"):
        engine = build_clustered_engine(
            web, config=ClusterConfig(num_shards=2,
                                      replicas_per_shard=2),
        )
        if label == "controlplane":
            lifecycle = ShardLifecycleManager(engine)
            Autoscaler(engine, lifecycle)
        engines[label] = engine

    for engine in engines.values():
        _time_round(engine, QUERIES)
    timings = {label: [] for label in engines}
    for __ in range(rounds):
        for label, engine in engines.items():
            timings[label].extend(_time_round(engine, QUERIES))
    result = {label: statistics.median(values)
              for label, values in timings.items()}
    result["overhead"] = (
        result["controlplane"] / result["plain"] - 1.0
        if result["plain"] > 0 else 0.0
    )
    return result


def format_artifact(scenario, overhead, threshold: float) -> str:
    lines = [
        "X11 — autoscaler on a hot shard "
        "(2 shards x 1 replica, slow node then overload)",
        "",
        "  tick  mean      max       shards  replicas[0]  action",
    ]
    for row in scenario["rows"]:
        marker = " *" if row["acted"] else ""
        lines.append(
            f"  {row['tick']:4d}  {row['mean_ms']:7.1f}ms "
            f"{row['max_ms']:7.1f}ms  {row['shards']:6d}  "
            f"{row['hot_replicas']:11d}  {row['action']}{marker}"
        )
    actions = [action for __, action in scenario["actions"]]
    replica_ok = ("add_replica" in actions
                  and scenario["slow_settled_ms"]
                  < 0.5 * scenario["slow_onset_ms"])
    split_ok = ("split" in actions
                and scenario["reshards"] >= 1
                and scenario["settled_ms"]
                < 0.7 * scenario["overload_onset_ms"]
                and scenario["settled_ms"] < LATENCY_HIGH_MS)
    quiet_ok = scenario["quiet"]
    overhead_ok = overhead["overhead"] <= threshold
    lines += [
        "",
        f"  actions: "
        + (", ".join(f"tick {t}: {a}"
                     for t, a in scenario["actions"]) or "none"),
        f"  topology: {scenario['shards']} shards, "
        f"version {scenario['topology_version']}, "
        f"{scenario['reshards']} reshard(s) completed",
        f"  latency: baseline {scenario['baseline_ms']:.1f}ms | "
        f"slow node {scenario['slow_onset_ms']:.1f} -> "
        f"{scenario['slow_settled_ms']:.1f}ms | "
        f"overload {scenario['overload_onset_ms']:.1f} -> "
        f"{scenario['settled_ms']:.1f}ms",
        "",
        f"  clean path: plain {overhead['plain']:.3f} ms/query, "
        f"controlplane {overhead['controlplane']:.3f} ms/query, "
        f"overhead {overhead['overhead'] * 100:+.1f}% "
        f"(threshold {threshold * 100:.0f}%)",
        "",
        f"  {'PASS' if replica_ok else 'FAIL'}: added replica + "
        "hedging halves the slow-node latency",
        f"  {'PASS' if split_ok else 'FAIL'}: shard split sheds the "
        "overload back inside the dead band",
        f"  {'PASS' if quiet_ok else 'FAIL'}: no scaling actions in "
        f"the final {QUIET_TICKS} ticks (no flapping)",
        f"  {'PASS' if overhead_ok else 'FAIL'}: idle control plane "
        "stays within the clean-path budget",
    ]
    return "\n".join(lines)


def _bars_ok(scenario, overhead, threshold: float) -> bool:
    actions = [action for __, action in scenario["actions"]]
    return (
        "add_replica" in actions
        and "split" in actions
        and scenario["reshards"] >= 1
        and scenario["slow_settled_ms"]
        < 0.5 * scenario["slow_onset_ms"]
        and scenario["settled_ms"]
        < 0.7 * scenario["overload_onset_ms"]
        and scenario["settled_ms"] < LATENCY_HIGH_MS
        and scenario["quiet"]
        and overhead["overhead"] <= threshold
    )


def test_reshard_autoscale(bench_web):
    """Pytest entry point: record the artifact, enforce the bars."""
    from benchmarks.conftest import record_artifact

    threshold = 0.05
    scenario = run_autoscale_scenario(bench_web)
    overhead = measure_overhead(bench_web, rounds=12)
    record_artifact(
        "x11_reshard_autoscale",
        format_artifact(scenario, overhead, threshold),
    )
    actions = [action for __, action in scenario["actions"]]
    assert "add_replica" in actions
    assert "split" in actions
    assert scenario["reshards"] >= 1
    assert (scenario["slow_settled_ms"]
            < 0.5 * scenario["slow_onset_ms"])
    assert (scenario["settled_ms"]
            < 0.7 * scenario["overload_onset_ms"])
    assert scenario["settled_ms"] < LATENCY_HIGH_MS
    assert scenario["quiet"]
    assert overhead["overhead"] <= threshold


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="control-plane autoscaler smoke check"
    )
    parser.add_argument("--check", type=float, default=0.05,
                        help="max allowed clean-path overhead "
                             "fraction (default 0.05)")
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing benchmarks/artifacts/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root))
    from repro.simweb.generator import WebGenerator, WebSpec

    spec = WebSpec(seed=args.seed,
                   topics=("video_games", "wine", "news"),
                   extra_sites_per_topic=1, pages_per_site=8,
                   images_per_site=3, videos_per_site=2,
                   news_per_site=4)
    web = WebGenerator(spec).build()
    scenario = run_autoscale_scenario(web)
    overhead = measure_overhead(web, rounds=args.rounds)
    text = format_artifact(scenario, overhead, args.check)
    print(text)
    if not args.no_artifact:
        artifact_dir = repo_root / "benchmarks" / "artifacts"
        artifact_dir.mkdir(exist_ok=True)
        (artifact_dir / "x11_reshard_autoscale.txt").write_text(
            text + "\n", encoding="utf-8"
        )
    return 0 if _bars_ok(scenario, overhead, args.check) else 1


if __name__ == "__main__":
    sys.exit(main())
