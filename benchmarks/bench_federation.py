"""Experiment X12 — federated meta-search with rank fusion.

Three site-sliced backends (Rollyo, Eurekster, Google Custom — each
driven through its own facade, each seeing a disjoint third of the
synthetic web) federate over a golden set of entity queries, judged by
the generator's own entity labels. The ISSUE's acceptance bars:

* fusion — fused recall@10 over the union meets or beats the best
  single backend for every fusion method (RRF, CombSUM, CombMNZ);
* query-generator lab — the three strategies (keyword, fielded,
  entity-expanded) each retrieve relevant results, with per-strategy
  precision and cost accounted by the lab;
* partial fusion — with one backend chaos-failed (every call raising a
  transport fault), the federated query still answers from the
  survivors: no exception escapes, the backend lands in ``degraded``;
* overhead — a platform with the federation layer enabled answers
  queries for an app that does NOT use federation within a few percent
  of a federation-free platform (wall-clock).

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_federation.py``), recording the
  ``x12_federation`` artifact; or
* standalone as a CI smoke check::

      PYTHONPATH=src python benchmarks/bench_federation.py \
          --check 0.05 --no-artifact

  which exits non-zero when fusion loses to the best single backend,
  a strategy retrieves nothing, the chaos leg throws or fails to
  degrade, or the clean-path overhead exceeds the threshold.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time

TOP_K = 10
GOLDEN_LIMIT = 12
OVERHEAD_ROUNDS = 12
OVERHEAD_QUERIES = ("news", "game", "classic", "review", "wine")


def build_federation(web):
    """A Symphony with three site-sliced baseline backends federated.

    Each backend sees one third of the synthetic web's sites, so no
    single backend can reach full recall — the union can.
    """
    from repro.baselines import (
        EureksterPlatform,
        GoogleCustomSearchPlatform,
        RollyoPlatform,
    )
    from repro.core.platform import Symphony
    from repro.federation import baseline_backend

    symphony = Symphony(web=web, use_authority=False)
    executor = symphony.enable_federation()
    # The seeded "local" backend would trivially win (it sees every
    # site); the experiment federates the three restricted slices.
    executor.registry.remove("local")
    sites = sorted({page.site for page in web.pages.values()})
    slices = [tuple(sites[i::3]) for i in range(3)]
    executor.registry.add(baseline_backend(
        RollyoPlatform(symphony.engine), sites=slices[0]))
    executor.registry.add(baseline_backend(
        EureksterPlatform(symphony.engine), sites=slices[1]))
    executor.registry.add(baseline_backend(
        GoogleCustomSearchPlatform(symphony.engine), sites=slices[2]))
    return symphony, executor


def golden_entity_queries(web, limit: int = GOLDEN_LIMIT) -> list:
    """(query_text, entity, relevant-URL set) triples, judged by the
    generator's entity labels on web pages."""
    by_entity: dict = {}
    for page in web.pages.values():
        if page.entity:
            by_entity.setdefault(page.entity, set()).add(page.url)
    golden = []
    for entity in sorted(by_entity):
        if len(by_entity[entity]) < 3:
            continue
        golden.append((entity, entity, by_entity[entity]))
        if len(golden) >= limit:
            break
    return golden


def _recall(urls, relevant, k: int = TOP_K) -> float:
    if not relevant:
        return 0.0
    return len(set(urls[:k]) & relevant) / len(relevant)


def run_fusion_comparison(executor, golden) -> dict:
    """Mean recall@10 per single backend and per fusion method."""
    from repro.federation import FUSION_METHODS

    single = {}
    for backend_id in executor.registry.ids():
        scores = [
            _recall([item.url for item in executor.search(
                text, backend_ids=(backend_id,), count=TOP_K,
            ).items], relevant)
            for text, __, relevant in golden
        ]
        single[backend_id] = sum(scores) / len(scores)
    fused = {}
    for method in FUSION_METHODS:
        scores = [
            _recall([item.url for item in executor.search(
                text, count=TOP_K, fusion=method,
            ).items], relevant)
            for text, __, relevant in golden
        ]
        fused[method] = sum(scores) / len(scores)
    best_single = max(single.values())
    return {"single": single, "fused": fused,
            "best_single": best_single}


def run_strategy_lab(executor, golden) -> list:
    """Precision/cost per query-generator strategy, via the lab."""
    from repro.federation import STRATEGY_NAMES

    executor.lab.stats.clear()
    for strategy in STRATEGY_NAMES:
        for text, entity, relevant in golden:
            result = executor.search(
                text, count=TOP_K, strategy=strategy,
                context={"entity": entity},
            )
            executor.lab.account(
                strategy, [item.url for item in result.items], relevant,
            )
    return executor.lab.report()


class _ChaosBackend:
    """A backend whose every call raises a (retryable) transport fault."""

    def __init__(self, inner) -> None:
        self.descriptor = inner.descriptor
        self.backend_id = inner.backend_id

    def search(self, text, count=10, deadline=None, context=None):
        from repro.errors import TransportError
        raise TransportError(
            f"chaos: backend {self.backend_id} unreachable"
        )


def run_chaos_leg(executor, golden) -> dict:
    """Fail one backend outright; fusion must degrade, not throw."""
    victim_id = executor.registry.ids()[0]
    victim = executor.registry.get(victim_id)
    executor.registry.remove(victim_id)
    executor.registry.add(_ChaosBackend(victim))
    try:
        degraded_ok = True
        answered = 0
        threw = 0
        for text, __, relevant in golden:
            try:
                result = executor.search(text, count=TOP_K)
            except Exception:
                threw += 1
                continue
            if victim_id not in result.degraded:
                degraded_ok = False
            if result.items:
                answered += 1
    finally:
        executor.registry.remove(victim_id)
        executor.registry.add(victim)
    return {"victim": victim_id, "queries": len(golden),
            "answered": answered, "threw": threw,
            "degraded_ok": degraded_ok}


def _time_round(symphony, app_id, queries) -> list:
    timings = []
    for i, query in enumerate(queries):
        start = time.perf_counter()
        symphony.query(app_id, query, session_id=f"x12-{i}")
        timings.append(time.perf_counter() - start)
    return timings


def measure_overhead(web, rounds: int = OVERHEAD_ROUNDS) -> dict:
    """Twin platforms, interleaved rounds — the delta isolates the cost
    the federation layer adds to an app that never opted in."""
    from benchmarks.conftest import build_gamerqueen
    from repro.core.platform import Symphony

    platforms = {}
    for label in ("plain", "federation"):
        symphony = Symphony(web=web, use_authority=False)
        if label == "federation":
            symphony.enable_federation()
            symphony.add_federated_source("Meta search")
        app_id, games = build_gamerqueen(
            symphony, designer_name=f"x12-{label}"
        )
        platforms[label] = (symphony, app_id, tuple(games[:4]))

    for symphony, app_id, games in platforms.values():
        _time_round(symphony, app_id, games)  # warm caches/indices
    timings = {label: [] for label in platforms}
    for __ in range(rounds):
        for label, (symphony, app_id, games) in platforms.items():
            timings[label].extend(
                _time_round(symphony, app_id, games)
            )
    result = {label: statistics.median(values)
              for label, values in timings.items()}
    result["overhead"] = (
        result["federation"] / result["plain"] - 1.0
        if result["plain"] > 0 else 0.0
    )
    return result


def format_artifact(fusion, strategies, chaos, overhead,
                    threshold: float) -> str:
    lines = [
        "X12 — federated meta-search "
        "(3 site-sliced baseline backends, entity golden set)",
        "",
        f"  fused recall@{TOP_K} vs single backends",
    ]
    for backend_id in sorted(fusion["single"]):
        marker = ("  <- best single"
                  if fusion["single"][backend_id]
                  == fusion["best_single"] else "")
        lines.append(f"    single:{backend_id:<16} "
                     f"{fusion['single'][backend_id]:.3f}{marker}")
    fusion_ok = True
    for method in sorted(fusion["fused"]):
        score = fusion["fused"][method]
        ok = score >= fusion["best_single"] - 1e-9
        fusion_ok = fusion_ok and ok
        lines.append(f"    fused:{method:<17} {score:.3f}  "
                     f"({score - fusion['best_single']:+.3f})")
    lines.append("")
    lines.append("  query-generator lab (precision/cost per strategy)")
    lines.append(f"    {'strategy':<10} {'queries':>7} {'cost':>8} "
                 f"{'precision':>9} {'cost/relevant':>13}")
    strategies_ok = True
    for row in strategies:
        strategies_ok = strategies_ok and row["relevant_retrieved"] > 0
        cpr = row["cost_per_relevant"]
        cpr_text = "inf" if cpr == float("inf") else f"{cpr:.2f}"
        lines.append(f"    {row['strategy']:<10} {row['queries']:>7} "
                     f"{row['cost']:>8.1f} {row['precision']:>9.3f} "
                     f"{cpr_text:>13}")
    lines.append("")
    lines.append(f"  chaos: backend {chaos['victim']!r} failing every "
                 f"call across {chaos['queries']} queries")
    chaos_ok = (chaos["threw"] == 0 and chaos["degraded_ok"]
                and chaos["answered"] == chaos["queries"])
    lines.append(f"    escaped exceptions {chaos['threw']}, "
                 f"degraded-marked on every query: "
                 f"{chaos['degraded_ok']}, "
                 f"answered {chaos['answered']}/{chaos['queries']}")
    lines.append("")
    lines.append("  clean-path overhead (median wall-clock per query, "
                 "app without federation)")
    lines.append(f"    plain      {overhead['plain'] * 1e3:8.3f} ms")
    lines.append(f"    federation {overhead['federation'] * 1e3:8.3f} "
                 f"ms")
    overhead_ok = overhead["overhead"] <= threshold
    lines.append(f"    overhead   {overhead['overhead'] * 100:+7.2f}% "
                 f"(threshold {threshold * 100:.0f}%)")
    lines += [
        "",
        f"  {'PASS' if fusion_ok else 'FAIL'}: every fusion method's "
        f"recall@{TOP_K} >= best single backend",
        f"  {'PASS' if strategies_ok else 'FAIL'}: all three "
        f"query-generator strategies retrieve relevant results",
        f"  {'PASS' if chaos_ok else 'FAIL'}: chaos-failed backend "
        f"degrades to partial fusion, no exception escapes",
        f"  {'PASS' if overhead_ok else 'FAIL'}: clean path within "
        f"{threshold * 100:.0f}% of a federation-free platform",
    ]
    return "\n".join(lines)


def _bars_ok(fusion, strategies, chaos, overhead,
             threshold: float) -> bool:
    return (
        all(score >= fusion["best_single"] - 1e-9
            for score in fusion["fused"].values())
        and all(row["relevant_retrieved"] > 0 for row in strategies)
        and chaos["threw"] == 0
        and chaos["degraded_ok"]
        and chaos["answered"] == chaos["queries"]
        and overhead["overhead"] <= threshold
    )


def test_federation(bench_web):
    """Pytest entry point: record the artifact, enforce the bars."""
    from benchmarks.conftest import record_artifact

    threshold = 0.05
    __, executor = build_federation(bench_web)
    golden = golden_entity_queries(bench_web)
    fusion = run_fusion_comparison(executor, golden)
    strategies = run_strategy_lab(executor, golden)
    chaos = run_chaos_leg(executor, golden)
    overhead = measure_overhead(bench_web)
    record_artifact(
        "x12_federation",
        format_artifact(fusion, strategies, chaos, overhead,
                        threshold),
    )
    for method, score in fusion["fused"].items():
        assert score >= fusion["best_single"] - 1e-9, method
    assert all(row["relevant_retrieved"] > 0 for row in strategies)
    assert chaos["threw"] == 0
    assert chaos["degraded_ok"]
    assert chaos["answered"] == chaos["queries"]
    assert overhead["overhead"] <= threshold


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="federated meta-search smoke check"
    )
    parser.add_argument("--check", type=float, default=0.05,
                        help="max allowed clean-path overhead "
                             "fraction (default 0.05)")
    parser.add_argument("--rounds", type=int, default=OVERHEAD_ROUNDS)
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing benchmarks/artifacts/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root))
    from repro.simweb.generator import WebGenerator, WebSpec

    spec = WebSpec(seed=args.seed,
                   topics=("video_games", "wine", "news"),
                   extra_sites_per_topic=1, pages_per_site=8,
                   images_per_site=3, videos_per_site=2,
                   news_per_site=4)
    web = WebGenerator(spec).build()
    __, executor = build_federation(web)
    golden = golden_entity_queries(web)
    fusion = run_fusion_comparison(executor, golden)
    strategies = run_strategy_lab(executor, golden)
    chaos = run_chaos_leg(executor, golden)
    overhead = measure_overhead(web, rounds=args.rounds)
    text = format_artifact(fusion, strategies, chaos, overhead,
                           args.check)
    print(text)
    if not args.no_artifact:
        artifact_dir = repo_root / "benchmarks" / "artifacts"
        artifact_dir.mkdir(exist_ok=True)
        (artifact_dir / "x12_federation.txt").write_text(
            text + "\n", encoding="utf-8"
        )
    return 0 if _bars_ok(fusion, strategies, chaos, overhead,
                         args.check) else 1


if __name__ == "__main__":
    sys.exit(main())
