"""Experiment F1 — regenerate Fig. 1 (the design interface).

Fig. 1 is a screenshot of the WYSIWYG designer with the source palette
on the left and the GamerQueen result layout on the right. This bench
drives the designer API through the exact §II-B gestures and renders the
canvas; the benchmark times a full design session (palette → drags →
elements → validation → compile).
"""

import json

import pytest

from repro.core.application import ApplicationDefinition

from benchmarks.conftest import make_inventory_rows, record_artifact


@pytest.fixture(scope="module")
def design_context(bench_symphony):
    symphony = bench_symphony
    account = symphony.register_designer("Fig1-Ann")
    games = symphony.web.entities["video_games"][:8]
    symphony.upload_http(
        account, "fig1_inventory.csv", make_inventory_rows(games),
        "fig1_inventory", content_type="text/csv",
    )
    inventory = symphony.add_proprietary_source(
        account, "fig1_inventory",
        search_fields=("title", "producer", "description"),
        name="Ann's inventory",
    )
    reviews = symphony.add_web_source(
        "Web search (reviews)", "web",
        sites=("gamespot.com", "ign.com", "teamxbox.com"),
    )
    return symphony, account, inventory, reviews


def run_design_session(symphony, account, inventory, reviews):
    """The §II-B narrative, gesture for gesture."""
    designer = symphony.designer()
    session = designer.new_application("GamerQueen",
                                       account.tenant.tenant_id)
    # "Ann drags the inventory data onto a new application layout as a
    #  primary content, and configures the application to search by
    #  title, producer, and description."
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=4,
        search_fields=("title", "producer", "description"),
    )
    # "She then configures the result layout to show the title
    #  hyperlinked to a detail page, an image, and a description."
    session.add_hyperlink(slot, "title", href_field="detail_url",
                          font_weight="bold")
    session.add_image(slot, "image_url")
    session.add_text(slot, "description", color="#444444")
    # "Ann may then wish to include game reviews as supplemental content
    #  by dragging web-search content onto the result layout and
    #  restricting it to sites such as gamespot.com, ign.com and
    #  teamxbox.com... The game titles from the inventory data could
    #  then be selected to drive that web search."
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        heading="Reviews from the web", max_results=2,
        query_suffix="review",
    )
    issues = session.validate()
    app = session.build()
    return session, issues, app


def test_fig1_design_session(benchmark, design_context):
    symphony, account, inventory, reviews = design_context
    session, issues, app = benchmark.pedantic(
        run_design_session,
        args=(symphony, account, inventory, reviews),
        rounds=5, iterations=1,
    )

    canvas = session.describe_canvas()
    config = json.dumps(app.to_dict(), indent=2)
    record_artifact(
        "fig1_design_interface",
        canvas + "\n\n[Compiled configuration file (excerpt)]\n"
        + "\n".join(config.splitlines()[:40]),
    )

    # The palette (Fig. 1's left bar) lists the available sources.
    palette_names = {entry["name"] for entry in session.palette()}
    assert {"Ann's inventory", "Web search (reviews)"} <= palette_names

    # The canvas shows the configured layout.
    assert "[primary] Games" in canvas
    assert "search by: title, producer, description" in canvas
    assert "element: hyperlink(title -> detail_url)" in canvas
    assert "element: image(image_url)" in canvas
    assert 'driven by: title + "review"' in canvas

    # No blocking issues; the compiled app validates and round-trips.
    assert [i for i in issues if i.severity == "error"] == []
    assert ApplicationDefinition.from_dict(app.to_dict()) == app
    child = app.slots[0].children[0]
    child_binding = app.binding(child.binding_id)
    assert child_binding.drive_fields == ("title",)
    restricted = symphony.sources.get(child_binding.source_id)
    assert set(restricted.sites) == {"gamespot.com", "ign.com",
                                     "teamxbox.com"}


def test_fig1_live_preview(benchmark, design_context):
    """The right panel of Fig. 1: results rendered while designing."""
    symphony, account, inventory, reviews = design_context
    session, __, __ = run_design_session(symphony, account, inventory,
                                         reviews)
    sample_query = symphony.web.entities["video_games"][0]

    preview = benchmark.pedantic(
        lambda: symphony.preview(session, sample_query),
        rounds=3, iterations=1,
    )
    assert preview.ok
    assert sample_query in preview.html
    record_artifact(
        "fig1_preview_html",
        f"Live preview for query {sample_query!r} "
        "(the Fig. 1 right panel):\n\n"
        + preview.html.replace("><", ">\n<"),
    )
    # Previewing never hosts anything.
    assert all(not app_id.startswith("app-preview")
               for app_id in symphony.apps.ids())


def test_fig1_wizard_and_templates(benchmark, design_context):
    """The Presentation capabilities behind the Fig. 1 toolbar."""
    symphony, account, inventory, __ = design_context

    def style_pass():
        designer = symphony.designer()
        session = designer.new_application(
            "Styled", account.tenant.tenant_id
        )
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",)
        )
        session.add_text(slot, "title")
        recommendation = session.run_wizard(tone="playful",
                                            accent_color="#ff6600")
        session.apply_template("midnight")
        return session, recommendation

    session, recommendation = benchmark.pedantic(
        style_pass, rounds=5, iterations=1
    )
    assert recommendation["theme"] == "storefront"
    assert session.theme == "midnight"  # explicit template wins
