"""Experiment X2 — runtime scaling and cache ablation (§II-C, implied).

The paper argues Symphony shoulders all execution cost on behalf of the
embedding page. This bench quantifies that cost in simulated platform
milliseconds (the deterministic latency model) and in wall-clock time:

* end-to-end latency vs. the number of supplemental sources attached to
  each result (the fan-out is per primary result × per source);
* latency vs. primary result count;
* the cache on/off ablation from DESIGN.md §6.
"""

import pytest

from repro.core.platform import Symphony

from benchmarks.conftest import build_gamerqueen, record_artifact


@pytest.fixture(scope="module")
def scaling_apps(bench_web):
    """One platform, four GamerQueen variants with 0/1/2/4 supplemental
    sources."""
    symphony = Symphony(web=bench_web, cache_enabled=False)
    apps = {}
    for i, n_supplemental in enumerate((0, 1, 2, 4)):
        app_id, games = build_gamerqueen(
            symphony, designer_name=f"Scale-{i}",
            table_name=f"scale_inventory_{i}",
            n_supplemental=n_supplemental,
        )
        apps[n_supplemental] = app_id
    return symphony, apps, games


def simulated_cost(symphony, app_id, query):
    response = symphony.query(app_id, query)
    trace = response.trace
    return {
        "total": trace.total_ms(),
        "primary": trace.stage("primary").elapsed_ms,
        "supplemental": trace.stage("supplemental").elapsed_ms,
        "queries": int(
            trace.stage("supplemental").detail.split()[0]
        ),
    }


def test_latency_vs_supplemental_fanout(benchmark, scaling_apps):
    symphony, apps, games = scaling_apps
    query = games[0]

    def sweep():
        return {n: simulated_cost(symphony, app_id, query)
                for n, app_id in apps.items()}

    costs = benchmark.pedantic(sweep, rounds=3, iterations=1)

    lines = [
        "End-to-end cost vs supplemental sources per result "
        "(cache off, simulated ms)",
        f"{'#supp':>6} {'queries':>8} {'primary':>9} "
        f"{'supplemental':>13} {'total':>9}",
    ]
    for n, cost in sorted(costs.items()):
        lines.append(
            f"{n:>6} {cost['queries']:>8} {cost['primary']:>9.1f} "
            f"{cost['supplemental']:>13.1f} {cost['total']:>9.1f}"
        )
    record_artifact("x2_fanout_scaling", "\n".join(lines))

    totals = [costs[n]["total"] for n in sorted(costs)]
    # Cost grows monotonically with fan-out...
    assert totals == sorted(totals)
    assert totals[-1] > totals[0]
    # ...and the growth comes from the supplemental stage.
    assert costs[4]["supplemental"] > costs[1]["supplemental"]
    assert costs[4]["primary"] == pytest.approx(costs[0]["primary"],
                                                rel=0.5)
    # With >=1 supplemental source, that stage dominates the pipeline —
    # the hosted-execution argument of the paper.
    for n in (1, 2, 4):
        assert costs[n]["supplemental"] > costs[n]["primary"]


def test_latency_vs_primary_count(benchmark, bench_web):
    symphony = Symphony(web=bench_web, cache_enabled=False)
    account = symphony.register_designer("Primary-Scale")
    games = symphony.web.entities["video_games"][:20]
    from benchmarks.conftest import make_inventory_rows
    symphony.upload_http(
        account, "scale.csv", make_inventory_rows(games),
        "pscale", content_type="text/csv",
    )
    inventory = symphony.add_proprietary_source(
        account, "pscale", search_fields=("title", "description"),
    )
    reviews = symphony.add_web_source(
        "Reviews-pscale", "web",
        sites=("gamespot.com", "ign.com"),
    )
    app_ids = {}
    for max_results in (1, 2, 4, 8):
        designer = symphony.designer()
        session = designer.new_application(
            f"PScale-{max_results}", account.tenant.tenant_id
        )
        slot = session.drag_source_onto_app(
            inventory.source_id, max_results=max_results,
            search_fields=("title", "description"),
        )
        session.add_text(slot, "title")
        session.drag_source_onto_result_layout(
            slot, reviews.source_id, drive_fields=("title",),
            max_results=2, query_suffix="review",
        )
        app_ids[max_results] = symphony.host(session)

    # A broad query matching many inventory records.
    query = "classic experience"

    def sweep():
        out = {}
        for max_results, app_id in app_ids.items():
            response = symphony.query(app_id, query)
            out[max_results] = (len(response.views),
                                response.trace.total_ms())
        return out

    costs = benchmark.pedantic(sweep, rounds=3, iterations=1)

    lines = ["Cost vs primary result count (2 review queries per "
             "result, simulated ms)",
             f"{'max_results':>12} {'views':>6} {'total_ms':>9}"]
    for max_results, (views, total) in sorted(costs.items()):
        lines.append(f"{max_results:>12} {views:>6} {total:>9.1f}")
    record_artifact("x2_primary_scaling", "\n".join(lines))

    totals = [costs[k][1] for k in sorted(costs)]
    assert totals == sorted(totals)
    assert costs[8][0] > costs[1][0]


def test_cache_ablation(benchmark, bench_web):
    """DESIGN.md §6: per-(source, query) memoization on vs off."""
    cached = Symphony(web=bench_web, cache_enabled=True)
    uncached = Symphony(web=bench_web, cache_enabled=False)
    results = {}
    for label, symphony in (("cache_on", cached),
                            ("cache_off", uncached)):
        app_id, games = build_gamerqueen(
            symphony, designer_name=f"Cache-{label}",
            table_name=f"cache_inventory_{label}",
            n_supplemental=2,
        )
        results[label] = (symphony, app_id, games[0])

    def repeat_queries(label, repeats=5):
        symphony, app_id, query = results[label]
        totals = [symphony.query(app_id, query).trace.total_ms()
                  for __ in range(repeats)]
        return totals

    on_totals = benchmark.pedantic(
        repeat_queries, args=("cache_on",), rounds=1, iterations=1
    )
    off_totals = repeat_queries("cache_off")

    lines = ["Repeat-query cost, cache on vs off (simulated ms)",
             f"{'repeat':>7} {'cache_on':>9} {'cache_off':>10}"]
    for i, (on, off) in enumerate(zip(on_totals, off_totals)):
        lines.append(f"{i:>7} {on:>9.1f} {off:>10.1f}")
    speedup = off_totals[-1] / on_totals[-1]
    lines.append(f"steady-state speedup: {speedup:.1f}x")
    record_artifact("x2_cache_ablation", "\n".join(lines))

    # First query pays full price either way.
    assert on_totals[0] == pytest.approx(off_totals[0], rel=0.05)
    # Cached repeats flatten; uncached stay flat at the high price.
    assert on_totals[-1] < off_totals[-1]
    assert speedup > 1.5
