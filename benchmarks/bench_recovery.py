"""Experiment X14 — crash recovery is bounded and durability is cheap.

Three claims, one artifact:

1. **Catch-up is linear in the WAL backlog** — with automatic
   checkpoints off (baseline snapshot only), a crashed replica's
   simulated catch-up time grows linearly with the number of WAL
   records it missed: fitting catch-up vs backlog across a sweep must
   give R² ≥ 0.98 with a positive slope.
2. **Checkpoints bound replay** — with a checkpoint cadence of K
   records, recovery at the largest backlog replays fewer than K
   records and is strictly cheaper than the checkpoint-free recovery
   of the same backlog.
3. **Clean-path overhead ≤ 5%** — WAL append + LSN stamping on every
   mutation must cost at most 5% wall-clock on a mixed ingest/query
   workload, judged on the median of paired rounds that toggle the
   durability layer off/on on the same cluster. The automatic
   checkpoint cost at the default cadence (an amortized
   O(shard docs / cadence) snapshot copy, tunable, off the per-write
   hot path) is measured the same way and reported alongside.

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_recovery.py``), recording the
  ``x14_recovery`` artifact plus ``BENCH_recovery.json``; or
* standalone as a CI smoke check::

      PYTHONPATH=src python benchmarks/bench_recovery.py --check 0.05

  which exits non-zero when any claim fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

CRASH_SHARD = 0
CRASH_REPLICA = 1
BACKLOG_SWEEP = (40, 80, 160, 320)   # docs ingested while crashed
CHECKPOINT_EVERY = 32


def _build(web, durability=None):
    from repro.cluster import ClusterConfig
    from repro.core.platform import Symphony

    return Symphony(
        web=web, use_authority=False,
        cluster=ClusterConfig(num_shards=2, replicas_per_shard=2),
        durability=durability,
    )


def _ingest(engine, start: int, count: int, token: str) -> None:
    from repro.searchengine.documents import FieldedDocument
    from repro.searchengine.engine import Vertical

    for number in range(start, start + count):
        engine.add_document(Vertical.WEB, FieldedDocument(
            f"{token}-{number}",
            {"title": f"{token} payload {number}",
             "url": f"http://{token}.example/{number}"},
            None,
        ))


def _crash_recover(web, docs: int, checkpoint_every: int) -> dict:
    """One crash/recover cycle; returns the recovery facts."""
    from repro.durability import DurabilityConfig

    symphony = _build(web, DurabilityConfig(
        checkpoint_every=checkpoint_every))
    durability = symphony.durability
    wal_at_crash = durability.wal.last_lsn(CRASH_SHARD)
    durability.crash_replica(CRASH_SHARD, CRASH_REPLICA)
    _ingest(symphony.engine, 0, docs, f"backlog{docs}")
    backlog = durability.wal.last_lsn(CRASH_SHARD) - wal_at_crash
    report = durability.recover_replica(CRASH_SHARD, CRASH_REPLICA)
    return {
        "docs_ingested": docs,
        "backlog_records": backlog,
        "records_replayed": report.records_replayed,
        "docs_restored": report.docs_restored,
        "catch_up_ms": round(report.catch_up_ms, 3),
        "digest_match": report.digest_match,
    }


def _linear_fit(xs, ys) -> tuple:
    """Least-squares ``(slope, intercept, r_squared)``."""
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        return 0.0, mean_y, 0.0
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((y - mean_y) ** 2 for y in ys)
    ss_residual = sum((y - (slope * x + intercept)) ** 2
                      for x, y in zip(xs, ys))
    r_squared = 1.0 - (ss_residual / ss_total if ss_total else 0.0)
    return slope, intercept, r_squared


def measure_catch_up(web) -> dict:
    """Claims 1 and 2: the backlog sweep, with and without
    checkpoints."""
    no_checkpoint = [_crash_recover(web, docs, checkpoint_every=0)
                     for docs in BACKLOG_SWEEP]
    backlogs = [run["backlog_records"] for run in no_checkpoint]
    catch_ups = [run["catch_up_ms"] for run in no_checkpoint]
    slope, intercept, r_squared = _linear_fit(backlogs, catch_ups)
    checkpointed = _crash_recover(web, BACKLOG_SWEEP[-1],
                                  checkpoint_every=CHECKPOINT_EVERY)
    return {
        "sweep": no_checkpoint,
        "slope_ms_per_record": round(slope, 4),
        "intercept_ms": round(intercept, 3),
        "r_squared": round(r_squared, 6),
        "checkpointed": checkpointed,
        "checkpoint_every": CHECKPOINT_EVERY,
    }


def _time_round(symphony, start: int, docs: int, queries,
                token: str) -> float:
    begin = time.perf_counter()
    _ingest(symphony.engine, start, docs, token)
    for query in queries:
        symphony.engine.search("web", query)
    return (time.perf_counter() - begin) * 1000.0


def _toggle_pairs(symphony, pairs: int, docs_per_round: int) -> list:
    """Paired on/off ratios of the mixed workload on ONE platform.

    Two separate platforms (one durable, one not) share the process
    heap, so the durable one's retained WAL inflates full-GC passes
    that get charged to whichever side happens to be running — the
    apparent gap dwarfs the real per-write cost. Instead the SAME
    cluster runs adjacent rounds with its durability layer detached
    then re-attached: corpus size, heap shape, and cache state are
    identical within a pair, so the ratio isolates exactly the work
    the layer adds to each write.
    """
    manager = symphony.durability
    queries = ("payload", "news", "overhead payload")
    _time_round(symphony, 0, docs_per_round, queries, "warm")
    ratios = []
    for pair in range(pairs):
        start = (1 + 2 * pair) * docs_per_round
        # Alternate which side goes first: the second round of a pair
        # runs marginally warmer, and a fixed order would fold that
        # bias into every ratio.
        off_first = pair % 2 == 0
        states = [(None, "off"), (manager, "on")]
        timed = {}
        for layer, label in states if off_first else states[::-1]:
            symphony.engine.durability = layer
            timed[label] = _time_round(
                symphony,
                start + (0 if label == "off" else docs_per_round),
                docs_per_round, queries, label)
        symphony.engine.durability = manager
        if timed["off"] > 0:
            ratios.append(timed["on"] / timed["off"])
    return ratios


def measure_overhead(web, rounds: int = 20,
                     docs_per_round: int = 60) -> dict:
    """Claim 3: the WAL hot path is cheap, judged on paired rounds.

    Adjacent rounds on the same cluster toggle the durability layer
    off/on (see :func:`_toggle_pairs`); the claim is the median paired
    ratio for a WAL-only configuration (``checkpoint_every=0``) — WAL
    append + LSN stamping on every mutation, exactly the work the
    default cadence adds to *every* write. The automatic-checkpoint
    cost at the default cadence is measured the same way and reported
    alongside: it is an amortized O(shard docs / cadence) snapshot
    copy, a tunable background cost rather than per-write hot-path
    work, so it informs cadence sizing instead of gating the claim.
    """
    from repro.durability import DurabilityConfig

    wal_only = _toggle_pairs(
        _build(web, DurabilityConfig(checkpoint_every=0)),
        pairs=rounds, docs_per_round=docs_per_round)
    with_checkpoints = _toggle_pairs(
        _build(web, durability=True),
        pairs=rounds, docs_per_round=docs_per_round)
    return {
        "pairs": rounds,
        "docs_per_round": docs_per_round,
        "wal_ratio_spread": [round(min(wal_only), 4),
                             round(max(wal_only), 4)],
        "overhead": statistics.median(wal_only) - 1.0,
        "overhead_with_checkpoints": (
            statistics.median(with_checkpoints) - 1.0),
    }


def measure(web, rounds: int = 10) -> dict:
    result = {"catch_up": measure_catch_up(web),
              "overhead": measure_overhead(web, rounds=rounds)}
    result["verdicts"] = verdicts(result)
    return result


def verdicts(result: dict, threshold: float = 0.05) -> dict:
    catch_up = result["catch_up"]
    overhead = result["overhead"]
    checkpointed = catch_up["checkpointed"]
    full_replay = catch_up["sweep"][-1]
    return {
        "all_recoveries_converged": all(
            run["digest_match"] is True
            for run in catch_up["sweep"] + [checkpointed]
        ),
        "catch_up_linear_in_backlog": (
            catch_up["r_squared"] >= 0.98
            and catch_up["slope_ms_per_record"] > 0
        ),
        "checkpoint_bounds_replay": (
            checkpointed["records_replayed"]
            < catch_up["checkpoint_every"]
            <= full_replay["records_replayed"]
        ),
        "checkpoint_cheaper_than_full_replay": (
            checkpointed["catch_up_ms"] < full_replay["catch_up_ms"]
        ),
        "overhead_within_budget": overhead["overhead"] <= threshold,
    }


def format_artifact(result: dict, threshold: float) -> str:
    catch_up = result["catch_up"]
    overhead = result["overhead"]
    checks = verdicts(result, threshold)
    ok = all(checks.values())
    lines = [
        "X14 — crash recovery: bounded catch-up, cheap durability",
        "",
        "  catch-up vs WAL backlog (no checkpoints past the baseline)",
        "    backlog   replayed   catch-up",
    ]
    for run in catch_up["sweep"]:
        lines.append(
            f"    {run['backlog_records']:>7}   "
            f"{run['records_replayed']:>8}   "
            f"{run['catch_up_ms']:>8.1f} sim ms"
        )
    checkpointed = catch_up["checkpointed"]
    lines += [
        f"    linear fit           : "
        f"{catch_up['slope_ms_per_record']:.3f} ms/record "
        f"+ {catch_up['intercept_ms']:.1f} ms "
        f"(R^2 {catch_up['r_squared']:.4f})",
        "",
        f"  with checkpoints every {catch_up['checkpoint_every']} "
        "records (same largest backlog)",
        f"    records replayed     : "
        f"{checkpointed['records_replayed']}"
        f"  (vs {catch_up['sweep'][-1]['records_replayed']} without)",
        f"    catch-up             : "
        f"{checkpointed['catch_up_ms']:.1f} sim ms"
        f"  (vs {catch_up['sweep'][-1]['catch_up_ms']:.1f} without)",
        "",
        "  clean-path overhead (ingest+query, paired off/on rounds on "
        "one cluster)",
        f"    WAL append + LSN     : {overhead['overhead'] * 100:+8.1f}"
        f" %   (median of {overhead['pairs']} paired ratios, "
        f"threshold {threshold * 100:.0f} %)",
        f"    + auto-checkpoints   : "
        f"{overhead['overhead_with_checkpoints'] * 100:+8.1f}"
        f" %   (default cadence; amortized snapshot copy, "
        f"informational)",
        "",
    ]
    for name, passed in checks.items():
        lines.append(f"  [{'x' if passed else ' '}] {name}")
    lines += [
        "",
        f"  {'PASS' if ok else 'FAIL'}: recovery is "
        f"{'checkpoint-bounded, linear in backlog, and cheap' if ok else 'FAILING a claim above'}",
    ]
    return "\n".join(lines)


def test_recovery_bench(bench_web):
    """Pytest entry point: record the artifact, enforce every claim."""
    from benchmarks.conftest import record_artifact

    threshold = 0.05
    result = measure(bench_web, rounds=10)
    record_artifact("x14_recovery", format_artifact(result, threshold),
                    data=result, json_name="BENCH_recovery.json")
    checks = verdicts(result, threshold)
    assert all(checks.values()), checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="crash-recovery smoke check (X14)"
    )
    parser.add_argument("--check", type=float, default=0.05,
                        help="max allowed clean-path overhead fraction "
                             "(default 0.05)")
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing benchmarks/artifacts/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root))
    from repro.simweb.generator import WebGenerator, WebSpec

    # A moderate web keeps the smoke check fast while the checkpoint
    # baseline still holds a real corpus worth restoring.
    spec = WebSpec(seed=args.seed,
                   topics=("video_games", "wine", "news"),
                   extra_sites_per_topic=1, pages_per_site=8,
                   images_per_site=3, videos_per_site=2,
                   news_per_site=4)
    web = WebGenerator(spec).build()
    result = measure(web, rounds=args.rounds)
    result["verdicts"] = verdicts(result, args.check)
    text = format_artifact(result, args.check)
    print(text)
    if not args.no_artifact:
        artifact_dir = repo_root / "benchmarks" / "artifacts"
        artifact_dir.mkdir(exist_ok=True)
        (artifact_dir / "x14_recovery.txt").write_text(
            text + "\n", encoding="utf-8")
        (artifact_dir / "BENCH_recovery.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    return 0 if all(result["verdicts"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
