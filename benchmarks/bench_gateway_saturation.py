"""Experiment X10 — gateway behavior under saturation.

Drives the multi-tenant serving gateway through an offered-load sweep
(1x / 2x / 4x of dispatch capacity, all of the excess from one hot
tenant) and verifies the ISSUE's acceptance bars:

* fairness — at 4x overload every non-hot tenant still completes at
  least 80% of its fair share (DRR should deliver 100%);
* coalescing — a stampede of identical requests collapses to a single
  pipeline execution;
* overhead — routing a clean, cacheless query through the gateway
  (admission + DRR + single-flight bookkeeping) costs < 10% over
  calling the runtime directly.

Queue waits are simulated-clock milliseconds read back from the
``gateway_queue_wait_ms`` histogram, so the sweep is deterministic;
only the overhead section uses wall-clock timings.

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_gateway_saturation.py``), recording the
  ``x10_gateway_saturation`` artifact; or
* standalone as a CI smoke check::

      PYTHONPATH=src python benchmarks/bench_gateway_saturation.py \
          --check 0.10 --no-artifact

  which exits non-zero when fairness drops below 80% of fair share or
  the clean-path overhead exceeds the threshold.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time

N_TENANTS = 4
CAPACITY = 16          # dispatches pumped per load factor
FAIR_SHARE = CAPACITY // N_TENANTS
LOAD_FACTORS = (1, 2, 4)
STAMPEDE = 16
FAIRNESS_FLOOR = 0.8


def _build_tenants(symphony):
    """Host one single-source app per tenant; returns their app ids."""
    from benchmarks.conftest import make_inventory_rows

    app_ids = []
    for i in range(N_TENANTS):
        account = symphony.register_designer(f"X10 Tenant {i}")
        games = symphony.web.entities["video_games"][:4]
        table = f"x10_inventory_{i}"
        symphony.upload_http(
            account, f"{table}.csv", make_inventory_rows(games),
            table, content_type="text/csv",
        )
        source = symphony.add_proprietary_source(
            account, table,
            search_fields=("title", "producer", "description"),
        )
        session = symphony.designer().new_application(
            f"X10 App {i}", account.tenant.tenant_id
        )
        slot = session.drag_source_onto_app(
            source.source_id, heading="Games", max_results=3,
            search_fields=("title", "producer", "description"),
        )
        session.add_hyperlink(slot, "title", href_field="detail_url")
        app_ids.append(symphony.host(session))
    return app_ids


def _gateway_platform(web):
    from repro.core.platform import Symphony
    from repro.gateway import GatewayConfig

    return Symphony(web=web, use_authority=False, telemetry=True,
                    gateway=GatewayConfig(workers=2))


def run_load_sweep(web) -> list:
    """One fresh platform per load factor; hot tenant floods, rest
    offer exactly their fair share of distinct (uncacheable) queries."""
    from repro.core.runtime import QueryRequest
    from repro.errors import AdmissionRejectedError

    rows = []
    for factor in LOAD_FACTORS:
        symphony = _gateway_platform(web)
        app_ids = _build_tenants(symphony)
        hot, cold = app_ids[0], app_ids[1:]
        games = symphony.web.entities["video_games"][:4]
        offered = shed = 0

        def submit(app_id, query):
            nonlocal offered, shed
            offered += 1
            try:
                symphony.gateway.submit(QueryRequest(
                    app_id=app_id, query_text=query,
                ))
            except AdmissionRejectedError:
                shed += 1

        for i in range(factor * FAIR_SHARE):
            submit(hot, f"{games[i % 4]} hot f{factor} n{i}")
        for app_id in cold:
            for i in range(FAIR_SHARE):
                submit(app_id, f"{games[i % 4]} {app_id} n{i}")
        symphony.gateway.pump(max_dispatches=CAPACITY)

        stats = symphony.gateway.stats()
        completed = stats["completed"]
        min_cold = min(completed.get(app_id, 0) for app_id in cold)
        waits = symphony.telemetry.metrics.histogram(
            "gateway_queue_wait_ms"
        ).summary()
        rows.append({
            "factor": factor,
            "offered": offered,
            "dispatched": stats["dispatched"],
            "shed": shed,
            "hot_completed": completed.get(hot, 0),
            "min_cold_completed": min_cold,
            "fairness": min_cold / FAIR_SHARE,
            "queue_wait_p99_ms": waits.get("p99") or 0.0,
        })
    return rows


def run_stampede(web) -> dict:
    """Identical concurrent requests must collapse to one execution."""
    from repro.core.runtime import QueryRequest

    symphony = _gateway_platform(web)
    app_ids = _build_tenants(symphony)
    query = symphony.web.entities["video_games"][0]
    tickets = [
        symphony.gateway.submit(QueryRequest(app_id=app_ids[0],
                                             query_text=query))
        for __ in range(STAMPEDE)
    ]
    symphony.gateway.pump()
    stats = symphony.gateway.stats()
    responses = {id(ticket.result()) for ticket in tickets}
    return {
        "submitted": STAMPEDE,
        "dispatched": stats["dispatched"],
        "coalesced": stats["coalesced"],
        "coalesce_ratio": stats["coalesced"] / STAMPEDE,
        "distinct_responses": len(responses),
    }


def _time_round(symphony, app_id, queries, via_gateway: bool) -> list:
    """Cold-query wall times (ms) for one pass over ``queries``."""
    timings = []
    for query in queries:
        symphony.runtime.cache.clear()
        if via_gateway:
            symphony.gateway.cache.clear()
        start = time.perf_counter()
        if via_gateway:
            symphony.query_via_gateway(app_id, query, session_id="x10")
        else:
            symphony.query(app_id, query, session_id="x10")
        timings.append((time.perf_counter() - start) * 1000.0)
    return timings


def measure_overhead(web, rounds: int = 10) -> dict:
    """Twin platforms, caches cleared per query, interleaved rounds —
    same protocol as X9 so the delta isolates the gateway hop."""
    from benchmarks.conftest import build_gamerqueen
    from repro.core.platform import Symphony

    platforms = {}
    for label in ("direct", "gateway"):
        symphony = Symphony(web=web, use_authority=False,
                            gateway=(label == "gateway"))
        app_id, games = build_gamerqueen(
            symphony, designer_name=f"X10-{label}",
            table_name=f"x10_{label}", n_supplemental=1,
        )
        platforms[label] = (symphony, app_id, games[:4])

    for label, (symphony, app_id, queries) in platforms.items():
        _time_round(symphony, app_id, queries, label == "gateway")
    timings = {label: [] for label in platforms}
    for __ in range(rounds):
        for label, (symphony, app_id, queries) in platforms.items():
            timings[label].extend(
                _time_round(symphony, app_id, queries,
                            label == "gateway")
            )
    result = {label: statistics.median(values)
              for label, values in timings.items()}
    result["overhead"] = (
        result["gateway"] / result["direct"] - 1.0
        if result["direct"] > 0 else 0.0
    )
    return result


def format_artifact(sweep, stampede, overhead,
                    threshold: float) -> str:
    lines = [
        "X10 — gateway under saturation "
        "(4 tenants, capacity 16, hot tenant floods)",
        "",
        "  load   offered  dispatched  shed  hot  min-cold  "
        "fairness  p99 wait",
    ]
    for row in sweep:
        lines.append(
            f"  {row['factor']}x    {row['offered']:7d}  "
            f"{row['dispatched']:10d}  {row['shed']:4d}  "
            f"{row['hot_completed']:3d}  {row['min_cold_completed']:8d}  "
            f"{row['fairness'] * 100:7.0f}%  "
            f"{row['queue_wait_p99_ms']:7.1f}ms"
        )
    fairness_ok = all(row["fairness"] >= FAIRNESS_FLOOR
                      for row in sweep)
    coalesce_ok = (stampede["dispatched"] == 1
                   and stampede["distinct_responses"] == 1)
    overhead_ok = overhead["overhead"] <= threshold
    lines += [
        "",
        f"  stampede: {stampede['submitted']} identical submits -> "
        f"{stampede['dispatched']} execution(s), "
        f"{stampede['coalesced']} coalesced "
        f"(ratio {stampede['coalesce_ratio'] * 100:.0f}%)",
        "",
        f"  clean path: direct {overhead['direct']:.3f} ms/query, "
        f"gateway {overhead['gateway']:.3f} ms/query, "
        f"overhead {overhead['overhead'] * 100:+.1f}% "
        f"(threshold {threshold * 100:.0f}%)",
        "",
        f"  {'PASS' if fairness_ok else 'FAIL'}: non-hot tenants keep "
        f">= {FAIRNESS_FLOOR * 100:.0f}% of fair share at 4x overload",
        f"  {'PASS' if coalesce_ok else 'FAIL'}: stampede collapses to "
        "a single pipeline execution",
        f"  {'PASS' if overhead_ok else 'FAIL'}: gateway hop stays "
        "within the clean-path budget",
    ]
    return "\n".join(lines)


def test_gateway_saturation(bench_web):
    """Pytest entry point: record the artifact, enforce the bars."""
    from benchmarks.conftest import record_artifact

    threshold = 0.10
    sweep = run_load_sweep(bench_web)
    stampede = run_stampede(bench_web)
    overhead = measure_overhead(bench_web, rounds=10)
    record_artifact(
        "x10_gateway_saturation",
        format_artifact(sweep, stampede, overhead, threshold),
    )
    for row in sweep:
        assert row["fairness"] >= FAIRNESS_FLOOR
    assert stampede["dispatched"] == 1
    assert stampede["distinct_responses"] == 1
    assert overhead["overhead"] <= threshold


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="gateway saturation / fairness smoke check"
    )
    parser.add_argument("--check", type=float, default=0.10,
                        help="max allowed clean-path overhead "
                             "fraction (default 0.10)")
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing benchmarks/artifacts/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root))
    from repro.simweb.generator import WebGenerator, WebSpec

    spec = WebSpec(seed=args.seed,
                   topics=("video_games", "wine", "news"),
                   extra_sites_per_topic=1, pages_per_site=8,
                   images_per_site=3, videos_per_site=2,
                   news_per_site=4)
    web = WebGenerator(spec).build()
    sweep = run_load_sweep(web)
    stampede = run_stampede(web)
    overhead = measure_overhead(web, rounds=args.rounds)
    text = format_artifact(sweep, stampede, overhead, args.check)
    print(text)
    if not args.no_artifact:
        artifact_dir = repo_root / "benchmarks" / "artifacts"
        artifact_dir.mkdir(exist_ok=True)
        (artifact_dir / "x10_gateway_saturation.txt").write_text(
            text + "\n", encoding="utf-8"
        )
    ok = (
        all(row["fairness"] >= FAIRNESS_FLOOR for row in sweep)
        and stampede["dispatched"] == 1
        and overhead["overhead"] <= args.check
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
