"""Experiment X1 — Site Suggest quality and cost (§II-A, ref [2]).

Protocol: synthesize click logs in which users querying a topic click
on that topic's sites together; seed the suggester with a subset of a
topic's well-known sites and measure recall of the held-out sites among
the top suggestions, for both scorers. The benchmark times a suggestion
sweep; assertions require high recall for the log-driven walk and a
clear win over an off-topic control.
"""

import pytest

from repro.searchengine.logs import ClickEvent, QueryLog
from repro.simweb.vocab import topic_vocabulary
from repro.sitesuggest import SiteCooccurrenceGraph, SiteSuggest
from repro.util import deterministic_rng

from benchmarks.conftest import record_artifact

TOPICS = ("video_games", "wine", "movies", "travel")


def synthesize_log(queries_per_topic=120, clicks_per_query=3,
                   seed=7) -> QueryLog:
    """Users querying a topic co-click that topic's sites."""
    log = QueryLog()
    rng = deterministic_rng(("sitesuggest-log", seed))
    for topic in TOPICS:
        vocab = topic_vocabulary(topic)
        sites = list(vocab.sites)
        for i in range(queries_per_topic):
            query = f"{topic}-query-{i % 40}"
            for site in rng.sample(sites,
                                   min(clicks_per_query, len(sites))):
                log.log_click(ClickEvent(
                    timestamp_ms=i, query=query,
                    url=f"http://{site}/page-{i}",
                ))
    return log


@pytest.fixture(scope="module")
def suggest_graph():
    return SiteCooccurrenceGraph.from_query_log(synthesize_log())


def recall_at(suggestions, held_out, k):
    top = {s.site for s in suggestions[:k]}
    return len(top & set(held_out)) / len(held_out)


def sweep(graph, method):
    """Seed with half of each topic's sites; recall the other half."""
    results = {}
    suggester = SiteSuggest(graph)
    for topic in TOPICS:
        sites = list(topic_vocabulary(topic).sites)
        half = max(1, len(sites) // 2)
        seeds, held_out = sites[:half], sites[half:]
        if not held_out:
            continue
        suggestions = suggester.suggest(seeds, count=10, method=method)
        results[topic] = recall_at(suggestions, held_out,
                                   k=len(held_out) + 2)
    return results


def test_sitesuggest_recall_random_walk(benchmark, suggest_graph):
    recalls = benchmark.pedantic(
        sweep, args=(suggest_graph, "random_walk"),
        rounds=3, iterations=1,
    )
    pmi_recalls = sweep(suggest_graph, "pmi")

    lines = ["Site Suggest recall of held-out same-topic sites",
             f"{'topic':<14} {'random_walk':>12} {'pmi':>8}"]
    for topic in recalls:
        lines.append(f"{topic:<14} {recalls[topic]:>12.2f} "
                     f"{pmi_recalls.get(topic, 0.0):>8.2f}")
    mean_rw = sum(recalls.values()) / len(recalls)
    mean_pmi = sum(pmi_recalls.values()) / len(pmi_recalls)
    lines.append(f"{'MEAN':<14} {mean_rw:>12.2f} {mean_pmi:>8.2f}")
    record_artifact("x1_sitesuggest_recall", "\n".join(lines))

    # Co-click structure is strong in the synthetic logs: the walk must
    # recover nearly all held-out sites for every topic.
    assert all(value >= 0.8 for value in recalls.values()), recalls
    assert mean_rw >= 0.9
    assert mean_pmi >= 0.8


def test_sitesuggest_rejects_off_topic(benchmark, suggest_graph):
    suggester = SiteSuggest(suggest_graph)
    game_sites = topic_vocabulary("video_games").sites

    suggestions = benchmark.pedantic(
        lambda: suggester.suggest(list(game_sites[:3]), count=10),
        rounds=3, iterations=1,
    )
    wine_sites = set(topic_vocabulary("wine").sites)
    suggested = {s.site for s in suggestions}
    # No cross-topic contamination: wine sites never co-click with
    # game sites in the synthesized logs.
    assert not suggested & wine_sites


def test_sitesuggest_cold_start_with_link_prior(benchmark, bench_web):
    """With zero log evidence, the link-structure prior still works."""
    graph = SiteCooccurrenceGraph()
    graph.blend_link_graph(bench_web.domain_link_graph())
    suggester = SiteSuggest(graph)

    suggestions = benchmark.pedantic(
        lambda: suggester.suggest(["gamespot.com", "ign.com"],
                                  count=8),
        rounds=3, iterations=1,
    )
    assert suggestions
    suggested_topics = {
        bench_web.sites[s.site].topic
        for s in suggestions if s.site in bench_web.sites
    }
    # Links are predominantly same-topic, so suggestions should be too.
    assert "video_games" in suggested_topics
