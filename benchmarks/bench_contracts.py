"""Experiment X15 — governed ingest is vigilant *and* cheap.

Two claims, one artifact:

1. **Governance** — the shared drifted-feed scenario
   (:mod:`repro.contracts.scenario`): a products feed that turns bad
   mid-stream must have its schema drift flagged within one refresh
   interval, its violating rows quarantined (and replayable exactly
   once under a widened contract), and its freshness SLA breach alerted
   within one refresh interval of the deadline passing.
2. **Overhead** — enforcing a realistic four-field contract
   (normalization, a required key, a range, an enum) on a 10k-row bulk
   ingest must cost at most 10% over the same load on an ungoverned
   platform, and a platform with contracts *enabled but unused* must
   pay nothing measurable on uncontracted tables (the null path).

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_contracts.py``), recording the
  ``x15_contracts`` artifact plus its machine-readable twin
  ``BENCH_contracts.json``; or
* standalone as a CI smoke check::

      PYTHONPATH=src python benchmarks/bench_contracts.py --check 0.10

  which exits non-zero when any claim fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

N_ROWS = 10_000
#: The null path shares almost every instruction with the baseline, so
#: its bound is a noise band, not a feature budget.
NULL_THRESHOLD = 0.05

_PLATFORMS = ("PC", "Xbox", "PS3")


def _bulk_rows(n: int = N_ROWS) -> list:
    """A clean feed batch: every row passes the contract's fast path."""
    return [
        {"sku": f"sku-{i}", "title": f"Game {i}",
         "price": f"${i % 90 + 10}.99",
         "platform": _PLATFORMS[i % 3]}
        for i in range(n)
    ]


def _bulk_contract(table: str):
    from repro.contracts import DataContract, FieldContract
    from repro.storage.records import FieldType

    return DataContract(
        table=table,
        fields=(
            FieldContract("sku", FieldType.STRING, required=True,
                          normalize=("trim", "upper")),
            FieldContract("title", FieldType.STRING, required=True,
                          normalize=("collapse_ws",)),
            FieldContract("price", FieldType.FLOAT, min_value=0.0,
                          normalize=("strip_currency",)),
            FieldContract("platform", FieldType.STRING,
                          allowed=_PLATFORMS),
        ),
        policy="quarantine",
    )


def _timed_upload(symphony, account, table: str, rows: list) -> float:
    """One 10k-row bulk upload; returns wall milliseconds."""
    batch = [dict(row) for row in rows]
    start = time.perf_counter()
    symphony.upload_structured_data(account, batch, table_name=table)
    return (time.perf_counter() - start) * 1000.0


def measure_overhead(rounds: int = 5) -> dict:
    """Overhead leg: ungoverned vs null-contracts vs governed ingest.

    Every round builds three *fresh* platforms (so no platform ever
    carries more accumulated tables than another — memory pressure is
    the dominant noise source here), runs one warm-up upload each, then
    one measured upload each, interleaved. The claim is judged on the
    per-platform *minimum* across rounds: enforcement cost is
    deterministic per row so it survives in the minimum, while GC and
    scheduler noise only ever inflate a sample.
    """
    from repro.core.platform import Symphony

    rows = _bulk_rows()
    timings: dict[str, list] = {"base": [], "null": [], "governed": []}
    for round_no in range(rounds):
        base = Symphony(telemetry=True)
        null = Symphony(telemetry=True, contracts=True)
        governed = Symphony(telemetry=True, contracts=True)
        acc_b = base.register_designer("X15-base")
        acc_n = null.register_designer("X15-null")
        acc_g = governed.register_designer("X15-governed")
        governed.register_contract(
            acc_g, _bulk_contract(f"products_{round_no}"))
        legs = (
            ("base", base, acc_b, f"warm_b{round_no}",
             f"products_{round_no}"),
            ("null", null, acc_n, f"warm_n{round_no}",
             f"products_{round_no}_n"),
            ("governed", governed, acc_g, f"warm_g{round_no}",
             f"products_{round_no}"),
        )
        for label, symphony, account, warm_table, table in legs:
            if label == "governed":
                symphony.register_contract(
                    account, _bulk_contract(warm_table))
            _timed_upload(symphony, account, warm_table, rows)
        for label, symphony, account, __, table in legs:
            timings[label].append(
                _timed_upload(symphony, account, table, rows))
    floor = {label: min(values) for label, values in timings.items()}
    return {
        "rows": N_ROWS,
        "rounds": rounds,
        "base_ms": round(floor["base"], 3),
        "null_ms": round(floor["null"], 3),
        "governed_ms": round(floor["governed"], 3),
        "base_median_ms": round(statistics.median(timings["base"]), 3),
        "null_median_ms": round(statistics.median(timings["null"]), 3),
        "governed_median_ms": round(
            statistics.median(timings["governed"]), 3),
        "governed_overhead": (floor["governed"] / floor["base"] - 1.0
                              if floor["base"] > 0 else 0.0),
        "null_overhead": (floor["null"] / floor["base"] - 1.0
                          if floor["base"] > 0 else 0.0),
    }


def measure_governance() -> dict:
    """Governance leg: the shared drifted-feed scenario end to end."""
    from repro.contracts.scenario import (
        INTERVAL_MS,
        MAX_STALENESS_MS,
        run_drifted_feed,
    )
    from repro.core.platform import Symphony

    symphony = Symphony(contracts=True, slo=True)
    report = run_drifted_feed(symphony)
    return {
        "scenario_ok": report.ok,
        "checks": {check.name: {"ok": check.ok, "detail": check.detail}
                   for check in report.checks},
        "refresh_interval_ms": INTERVAL_MS,
        "max_staleness_ms": MAX_STALENESS_MS,
        "drifted_at_ms": report.drifted_at_ms,
        "drift_detected_ms": report.drift_detected_ms,
        "stale_breach_ms": report.stale_breach_ms,
        "stale_event_ms": report.stale_event_ms,
        "quarantined": report.quarantined,
        "replayed": report.replayed,
        "requarantined": report.requarantined,
        "rows_loaded": report.rows_loaded,
    }


def measure(rounds: int = 5) -> dict:
    result = {"governance": measure_governance(),
              "overhead": measure_overhead(rounds=rounds)}
    result["verdicts"] = verdicts(result)
    return result


def verdicts(result: dict, threshold: float = 0.10) -> dict:
    governance = result["governance"]
    overhead = result["overhead"]
    interval = governance["refresh_interval_ms"]
    return {
        "scenario_invariants": governance["scenario_ok"],
        "drift_within_one_interval": (
            governance["drift_detected_ms"] is not None
            and governance["drifted_at_ms"] is not None
            and governance["drift_detected_ms"]
            <= governance["drifted_at_ms"] + interval),
        "bad_rows_quarantined": governance["quarantined"] == 3,
        "replay_recovers_fixed_rows": (
            governance["replayed"] == 1
            and governance["requarantined"] == 2),
        "staleness_alert_within_one_interval": (
            governance["stale_event_ms"] is not None
            and governance["stale_breach_ms"] is not None
            and governance["stale_event_ms"]
            <= governance["stale_breach_ms"] + interval),
        "governed_overhead_within_budget": (
            overhead["governed_overhead"] <= threshold),
        "null_path_unchanged": (
            overhead["null_overhead"] <= NULL_THRESHOLD),
    }


def format_artifact(result: dict, threshold: float) -> str:
    governance = result["governance"]
    overhead = result["overhead"]
    checks = verdicts(result, threshold)
    ok = all(checks.values())
    lines = [
        "X15 — data contracts: drift, quarantine, freshness, overhead",
        "",
        "  governance (drifted products feed, "
        f"{governance['refresh_interval_ms']} ms refresh interval)",
        f"    drift: fed at {governance['drifted_at_ms']} ms, "
        f"detected at {governance['drift_detected_ms']} ms",
        f"    quarantined          : {governance['quarantined']} rows",
        f"    replay (v2 contract) : {governance['replayed']} recovered,"
        f" {governance['requarantined']} re-quarantined",
        f"    staleness: breach at {governance['stale_breach_ms']} ms, "
        f"alerted at {governance['stale_event_ms']} ms"
        f"  (SLA {governance['max_staleness_ms']} ms)",
        "",
        f"  overhead ({overhead['rows']} rows x {overhead['rounds']}"
        " rounds, min across rounds)",
        f"    ungoverned           : {overhead['base_ms']:8.1f} ms",
        f"    contracts on, unused : {overhead['null_ms']:8.1f} ms"
        f"   ({overhead['null_overhead'] * 100:+.1f} %, noise band "
        f"{NULL_THRESHOLD * 100:.0f} %)",
        f"    governed             : {overhead['governed_ms']:8.1f} ms"
        f"   ({overhead['governed_overhead'] * 100:+.1f} %, threshold "
        f"{threshold * 100:.0f} %)",
        "",
    ]
    for name, passed in checks.items():
        lines.append(f"  [{'x' if passed else ' '}] {name}")
    lines += [
        "",
        f"  {'PASS' if ok else 'FAIL'}: governed ingest "
        f"{'catches drift, quarantines, alerts, and stays cheap' if ok else 'FAILED a claim above'}",
    ]
    return "\n".join(lines)


def test_contracts_bench():
    """Pytest entry point: record the artifact, enforce every claim."""
    from benchmarks.conftest import record_artifact

    threshold = 0.10
    result = measure(rounds=5)
    record_artifact("x15_contracts", format_artifact(result, threshold),
                    data=result, json_name="BENCH_contracts.json")
    checks = verdicts(result, threshold)
    assert all(checks.values()), checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Data-contract governance smoke check (X15)"
    )
    parser.add_argument("--check", type=float, default=0.10,
                        help="max allowed governed-ingest overhead "
                             "fraction (default 0.10)")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing benchmarks/artifacts/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root))

    result = measure(rounds=args.rounds)
    result["verdicts"] = verdicts(result, args.check)
    text = format_artifact(result, args.check)
    print(text)
    if not args.no_artifact:
        artifact_dir = repo_root / "benchmarks" / "artifacts"
        artifact_dir.mkdir(exist_ok=True)
        (artifact_dir / "x15_contracts.txt").write_text(
            text + "\n", encoding="utf-8")
        (artifact_dir / "BENCH_contracts.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    return 0 if all(result["verdicts"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
