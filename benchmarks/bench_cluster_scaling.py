"""Experiment X3 — cluster scatter-gather scaling and fault tolerance.

The clustered engine partitions each vertical across shards and fans a
query out in parallel, so the simulated per-query latency is driven by
the *largest* shard's candidate set instead of the whole corpus. This
bench regenerates two artifacts:

* per-query simulated latency vs shard count (1/2/4/8) over a mixed
  query workload — latency must fall as shards are added;
* a replica-kill run: with every replica of one shard dead, queries
  complete with ``degraded=True`` partial results instead of raising.
"""

import pytest

from repro.cluster import ClusterConfig, build_clustered_engine
from repro.searchengine.engine import build_engine

from benchmarks.conftest import record_artifact

SHARD_COUNTS = (1, 2, 4, 8)


def workload(web):
    games = web.entities["video_games"][:3]
    return [*games, "wine tasting notes", "review", "news update"]


@pytest.fixture(scope="module")
def clusters(bench_web):
    built = {
        n: build_clustered_engine(
            bench_web, ClusterConfig(num_shards=n, replicas_per_shard=1)
        )
        for n in SHARD_COUNTS
    }
    yield built
    for engine in built.values():
        engine.close()


def test_latency_vs_shard_count(benchmark, bench_web, clusters):
    single = build_engine(bench_web)
    queries = workload(bench_web)

    def sweep():
        costs = {
            0: sum(single.search("web", q).elapsed_ms for q in queries)
        }
        for n, cluster in clusters.items():
            costs[n] = sum(
                cluster.search("web", q).elapsed_ms for q in queries
            )
        return {n: total / len(queries) for n, total in costs.items()}

    costs = benchmark.pedantic(sweep, rounds=3, iterations=1)

    lines = [
        "Per-query simulated latency vs shard count "
        f"({len(queries)}-query mixed workload, web vertical)",
        f"{'shards':>7} {'avg_ms':>8} {'speedup':>8}",
    ]
    baseline = costs[0]
    for n in sorted(costs):
        label = "1 (mono)" if n == 0 else str(n)
        lines.append(f"{label:>7} {costs[n]:>8.2f} "
                     f"{baseline / costs[n]:>7.2f}x")
    record_artifact("x3_cluster_shard_scaling", "\n".join(lines))

    # A 1-shard cluster pays the same bill as the single-node engine...
    assert costs[1] == pytest.approx(costs[0], rel=0.01)
    # ...and latency drops monotonically as shards are added, because
    # the per-shard candidate scan shrinks while the base cost is paid
    # once (max over shards, not sum).
    ordered = [costs[n] for n in SHARD_COUNTS]
    assert ordered == sorted(ordered, reverse=True)
    assert costs[8] < costs[1]


def test_replica_kill_degrades_gracefully(bench_web):
    cluster = build_clustered_engine(
        bench_web, ClusterConfig(num_shards=4, replicas_per_shard=2)
    )
    try:
        queries = workload(bench_web)
        healthy_totals = {
            q: cluster.search("web", q).total_matches for q in queries
        }

        lines = ["Replica-kill fault run (4 shards x 2 replicas)"]

        # One replica down: failover inside the group, full results.
        cluster.kill_replica(0, 0)
        one_down = [cluster.search("web", q) for q in queries]
        assert all(not r.degraded for r in one_down)
        assert [r.total_matches for r in one_down] == \
            [healthy_totals[q] for q in queries]
        lines.append("kill shard-0/replica-0     -> degraded=False, "
                     "failover served full results")

        # The whole shard down: partial results, flagged, no exception.
        cluster.kill_replica(0, 1)
        for query in queries:
            response = cluster.search("web", query)
            assert response.degraded
            assert response.failed_shards == (0,)
            assert response.shards_ok == 3
            assert response.total_matches <= healthy_totals[query]
            lines.append(
                f"kill shard-0 entirely      -> degraded=True  "
                f"{response.total_matches:>3}/{healthy_totals[query]:>3}"
                f" matches  {query!r}"
            )

        # Revive one replica: service is whole again.
        cluster.revive_replica(0, 1)
        revived = cluster.search("web", queries[0])
        assert not revived.degraded
        assert revived.total_matches == healthy_totals[queries[0]]
        lines.append("revive shard-0/replica-1   -> degraded=False, "
                     "full results restored")

        record_artifact("x3_cluster_replica_kill", "\n".join(lines))
    finally:
        cluster.close()
