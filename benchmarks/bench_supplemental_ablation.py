"""Experiment X6 — supplemental query derivation ablation (DESIGN.md §6).

The paper's flow issues one focused supplemental query per primary
result. The alternative batches all primary results of a binding into a
single disjunctive query and fans the pooled results back out. The
ablation measures the trade-off: batched mode saves engine round-trips
(queries, simulated latency) but can misattribute or lose results in the
fan-back-out step.
"""

import pytest

from repro.core.platform import Symphony
from repro.core.runtime import SymphonyRuntime

from benchmarks.conftest import build_gamerqueen, record_artifact


def make_platform(bench_web, mode):
    symphony = Symphony(web=bench_web, cache_enabled=False)
    symphony.runtime = SymphonyRuntime(
        registry=symphony.sources,
        apps=symphony.apps,
        renderer=symphony.renderer,
        clock=symphony.clock,
        log=symphony.engine.log,
        cache_enabled=False,
        supplemental_mode=mode,
    )
    app_id, games = build_gamerqueen(
        symphony, designer_name=f"Derive-{mode}",
        table_name=f"derive_inventory_{mode}", n_supplemental=1,
    )
    return symphony, app_id, games


def run_workload(symphony, app_id, query):
    response = symphony.query(app_id, query)
    trace = response.trace
    coverage = sum(
        1 for view in response.views
        if any(result.items for result in view.supplemental.values())
    )
    return {
        "views": len(response.views),
        "covered": coverage,
        "supplemental_ms": trace.stage("supplemental").elapsed_ms,
        "total_ms": trace.total_ms(),
        "detail": trace.stage("supplemental").detail,
    }


@pytest.fixture(scope="module")
def platforms(bench_web):
    return {mode: make_platform(bench_web, mode)
            for mode in ("per_result", "batched")}


def test_supplemental_derivation_ablation(benchmark, platforms):
    # A broad query that matches several inventory titles, so the
    # batched mode has something to batch.
    query = "classic experience"

    def measure(mode):
        symphony, app_id, __ = platforms[mode]
        return run_workload(symphony, app_id, query)

    per_result = benchmark.pedantic(measure, args=("per_result",),
                                    rounds=3, iterations=1)
    batched = measure("batched")

    lines = [
        "Supplemental derivation: per-result focused queries vs one "
        "batched disjunction",
        f"{'mode':<12} {'queries':>18} {'supp_ms':>9} {'total_ms':>9} "
        f"{'coverage':>9}",
    ]
    for mode, cost in (("per_result", per_result),
                       ("batched", batched)):
        queries = cost["detail"].split()[0]
        coverage = f"{cost['covered']}/{cost['views']}"
        lines.append(
            f"{mode:<12} {queries:>18} {cost['supplemental_ms']:>9.1f} "
            f"{cost['total_ms']:>9.1f} {coverage:>9}"
        )
    record_artifact("x6_supplemental_derivation", "\n".join(lines))

    # Batched mode issues exactly one supplemental query; per-result
    # issues one per primary view.
    assert int(batched["detail"].split()[0]) == 1
    assert int(per_result["detail"].split()[0]) >= \
        per_result["views"]
    # The round-trip saving shows up as lower supplemental latency.
    assert batched["supplemental_ms"] < \
        per_result["supplemental_ms"]
    # The paper's per-result flow pays more but covers every result.
    assert per_result["covered"] == per_result["views"]
    # Batched coverage may trail but must not collapse.
    assert batched["covered"] >= per_result["views"] // 2


def test_batched_mode_preserves_assignment_quality(benchmark,
                                                   platforms):
    """For precise (single-title) queries both modes find the same
    review sites for the same title."""
    symphony_a, app_a, games = platforms["per_result"]
    symphony_b, app_b, __ = platforms["batched"]
    query = games[0]

    response_b = benchmark.pedantic(
        lambda: symphony_b.query(app_b, query), rounds=3, iterations=1
    )
    response_a = symphony_a.query(app_a, query)

    def supplemental_titles(response):
        out = set()
        for view in response.views:
            for result in view.supplemental.values():
                out.update(item.title for item in result.items)
        return out

    titles_a = supplemental_titles(response_a)
    titles_b = supplemental_titles(response_b)
    assert titles_b  # batched found reviews
    # Batched results are a subset of (or equal to) the focused ones
    # for a single-result query, never spurious extras from other
    # titles.
    head = games[0].split()[0].lower()
    assert all(head in title.lower() for title in titles_b)
