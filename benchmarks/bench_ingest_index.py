"""Experiment X3 — ingestion throughput and index scaling (§II-A).

The "Proprietary Data" capability: every upload method (HTTP, FTP, RSS,
crawl) and format (delimited, XML, JSON, workbook) is benchmarked for
wall-clock throughput, and the search index is profiled for build time
and query latency as the corpus grows. Includes the site-restriction
ablation from DESIGN.md §6 (index-level filter vs post-filtering).
"""

import json

import pytest

from repro.core.platform import Symphony
from repro.ingest.crawler import CrawlPolicy
from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument, FieldMode
from repro.searchengine.engine import SearchOptions, build_engine
from repro.searchengine.index import InvertedIndex
from repro.simweb.vocab import topic_vocabulary
from repro.storage.tenant import Quota
from repro.util import deterministic_rng

from benchmarks.conftest import record_artifact

N_ROWS = 400


def make_rows(n=N_ROWS, seed=3):
    vocab = topic_vocabulary("video_games")
    rng = deterministic_rng(("ingest-rows", seed))
    rows = []
    for i in range(n):
        rows.append({
            "title": f"{vocab.sample_entity(rng)} #{i}",
            "producer": f"Studio {i % 17}",
            "description": vocab.sample_sentence(rng, 8, 16),
            "price": f"{rng.uniform(5, 80):.2f}",
        })
    return rows


def rows_to_csv(rows) -> bytes:
    lines = ["title,producer,description,price"]
    for row in rows:
        description = row["description"].replace('"', "'")
        lines.append(
            f'{row["title"]},{row["producer"]},"{description}",'
            f'{row["price"]}'
        )
    return "\n".join(lines).encode()


def rows_to_xml(rows) -> bytes:
    from xml.sax.saxutils import escape
    parts = ["<inventory>"]
    for row in rows:
        parts.append("<item>")
        for key, value in row.items():
            parts.append(f"<{key}>{escape(str(value))}</{key}>")
        parts.append("</item>")
    parts.append("</inventory>")
    return "".join(parts).encode()


def rows_to_json(rows) -> bytes:
    return json.dumps(rows).encode()


def rows_to_workbook(rows) -> bytes:
    return json.dumps({
        "workbook": "inventory",
        "sheets": [{
            "name": "Items",
            "header": list(rows[0]),
            "rows": [[row[key] for key in rows[0]] for row in rows],
        }],
    }).encode()


FORMATS = {
    "delimited(csv)": ("inv.csv", "text/csv", rows_to_csv),
    "xml": ("inv.xml", "application/xml", rows_to_xml),
    "json": ("inv.json", "application/json", rows_to_json),
    "workbook": ("inv.xlsw", "application/x-workbook",
                 rows_to_workbook),
}


@pytest.mark.parametrize("fmt", sorted(FORMATS))
def test_upload_format_throughput(benchmark, bench_web, fmt):
    filename, content_type, encode = FORMATS[fmt]
    rows = make_rows()
    data = encode(rows)
    symphony = Symphony(web=bench_web, use_authority=False)
    account = symphony.register_designer(f"Fmt-{fmt}")
    # Every benchmark round lands in a fresh table; lift the quota.
    account.tenant.quota = Quota(max_tables=100_000)
    counter = {"n": 0}

    def ingest_once():
        counter["n"] += 1
        return symphony.upload_http(
            account, f"{counter['n']}-{filename}", data,
            f"tbl_{counter['n']}", content_type=content_type,
        )

    report = benchmark(ingest_once)
    assert report.inserted == N_ROWS
    benchmark.extra_info["rows"] = N_ROWS
    benchmark.extra_info["payload_bytes"] = len(data)


def test_upload_methods_all_deliver(benchmark, bench_web):
    """HTTP vs FTP vs RSS vs crawl: same pipeline, different transports."""
    symphony = Symphony(web=bench_web, use_authority=False)
    account = symphony.register_designer("Methods")
    account.tenant.quota = Quota(max_tables=100_000)
    rows = make_rows(100)
    csv_data = rows_to_csv(rows)
    symphony.ftp.put("/drop/inv.csv", csv_data)
    news_domain = topic_vocabulary("news").sites[0]
    seeds = [p.url for p in bench_web.pages_on("gamespot.com")[:2]]
    counter = {"n": 0}

    def ingest_all_methods():
        counter["n"] += 1
        n = counter["n"]
        http = symphony.upload_http(
            account, f"h{n}.csv", csv_data, f"http_{n}",
            content_type="text/csv",
        )
        ftp = symphony.upload_ftp(
            account, "/drop/inv.csv", f"ftp_{n}",
            content_type="text/csv",
        )
        rss = symphony.ingest_rss_feed(account, news_domain,
                                       f"rss_{n}")
        crawl = symphony.crawl_into(
            account, seeds, f"crawl_{n}",
            CrawlPolicy(max_pages=20, max_depth=1),
        )
        return http, ftp, rss, crawl

    http, ftp, rss, crawl = benchmark.pedantic(
        ingest_all_methods, rounds=3, iterations=1
    )
    lines = ["Upload methods — rows landed per method (one pass)",
             f"{'method':<8} {'rows':>6}"]
    for name, report in (("http", http), ("ftp", ftp), ("rss", rss),
                         ("crawl", crawl)):
        lines.append(f"{name:<8} {report.inserted:>6}")
    record_artifact("x3_upload_methods", "\n".join(lines))
    assert http.inserted == ftp.inserted == 100
    assert rss.inserted > 0
    assert crawl.inserted > 0


CORPUS_SIZES = (250, 500, 1000, 2000)


def corpus_documents(size):
    vocab = topic_vocabulary("video_games")
    rng = deterministic_rng(("corpus", size))
    for i in range(size):
        yield FieldedDocument(
            doc_id=f"d{i}",
            fields={
                "title": f"{vocab.sample_entity(rng)} {i}",
                "body": vocab.sample_paragraph(rng, sentences=4),
                "site": f"site-{i % 25}.example",
            },
        )


@pytest.mark.parametrize("size", CORPUS_SIZES)
def test_index_build_scaling(benchmark, size):
    docs = list(corpus_documents(size))

    def build():
        index = InvertedIndex(
            Analyzer(), field_modes={"site": FieldMode.KEYWORD}
        )
        for doc in docs:
            index.add(doc)
        return index

    index = benchmark(build)
    assert len(index) == size
    benchmark.extra_info["documents"] = size
    benchmark.extra_info["vocabulary"] = index.vocabulary_size("body")


@pytest.mark.parametrize("size", CORPUS_SIZES)
def test_query_latency_scaling(benchmark, size):
    index = InvertedIndex(Analyzer(),
                          field_modes={"site": FieldMode.KEYWORD})
    for doc in corpus_documents(size):
        index.add(doc)
    from repro.searchengine.query import QueryEvaluator, parse_query
    from repro.searchengine.ranking import BM25Scorer
    node = parse_query("game review combo")
    evaluator = QueryEvaluator(index, ["title", "body"])

    def run_query():
        candidates = evaluator.candidates(node)
        scorer = BM25Scorer(index, ["title", "body"])
        return sorted(
            ((d, scorer.score(d, ["game", "review", "combo"]))
             for d in candidates),
            key=lambda pair: -pair[1],
        )[:10]

    top = benchmark(run_query)
    assert top
    benchmark.extra_info["documents"] = size


def test_site_restriction_ablation(benchmark, bench_web):
    """DESIGN.md §6: index-level site filter vs post-filtering.

    Both must return the same result set; the index-level filter (the
    shipped implementation) must not be slower than scanning a large
    unrestricted result list and filtering afterwards.
    """
    engine = build_engine(bench_web, use_authority=False)
    entity = bench_web.entities["video_games"][0]
    sites = ("gamespot.com", "ign.com", "teamxbox.com")
    query = f'"{entity}" review'

    def index_level():
        return engine.search("web", query,
                             SearchOptions(count=10, sites=sites))

    def post_filter():
        broad = engine.search("web", query, SearchOptions(count=1000))
        kept = [r for r in broad.results if r.site in sites]
        return kept[:10]

    restricted = benchmark(index_level)
    post = post_filter()
    assert {r.url for r in restricted.results} == \
        {r.url for r in post}

    import time
    start = time.perf_counter()
    for __ in range(20):
        post_filter()
    post_s = (time.perf_counter() - start) / 20
    start = time.perf_counter()
    for __ in range(20):
        index_level()
    index_s = (time.perf_counter() - start) / 20
    record_artifact(
        "x3_site_restriction_ablation",
        "Site restriction: index-level filter vs post-filtering\n"
        f"index-level: {index_s * 1e3:.3f} ms/query\n"
        f"post-filter: {post_s * 1e3:.3f} ms/query\n"
        f"both return identical top-10 result sets",
    )
