"""Experiment X13 — the SLO layer detects, attributes, and stays cheap.

Three claims, one artifact:

1. **Detection** — a chaos plan degrades one shard (every replica 500ms
   slow); the fast-window burn-rate alert must fire within one fast
   window of the fault starting, and ``explain()`` must attribute at
   least half of the worst query's wall time to the faulted shard.
2. **Retention** — the flight recorder keeps every breaching trace but
   at most 5% of clean ones (tail sampling, not full retention).
3. **Overhead** — the clean path (no breaches, no alerts) must stay
   within a bounded wall-clock regression of a telemetry-only platform:
   judging observations is a few histogram/window updates per query.

Runs two ways:

* under pytest with the other benchmarks
  (``pytest benchmarks/bench_slo.py``), recording the ``x13_slo``
  artifact plus its machine-readable twin ``BENCH_slo.json``; or
* standalone as a CI smoke check::

      PYTHONPATH=src python benchmarks/bench_slo.py --check 0.05

  which exits non-zero when any claim fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

#: SLOConfig overrides for the chaos leg: windows tight enough that a
#: 30-query storm both fills ``min_events`` and bounds the detection
#: claim, thresholds matching examples/slo_burn_plan.json.
SLO_PLAN = {
    "latency_threshold_ms": 400.0,
    "fast_window_ms": 60_000,
    "slow_window_ms": 600_000,
    "burn_threshold": 3.0,
    "min_events": 6,
}
HOT_SHARD = 1


def measure_detection() -> dict:
    """Chaos leg: slow shard -> burn alert + attribution + retention."""
    from repro.resilience.chaos import FaultPlan, run_chaos

    plan = FaultPlan(
        name="x13-slo",
        seed=2028,
        queries=30,
        deadline_ms=1500.0,
        grace_ms=900.0,
        num_shards=2,
        replicas_per_shard=2,
        slow_shard=HOT_SHARD,
        slow_shard_ms=500.0,
        slo=dict(SLO_PLAN),
    )
    report = run_chaos(plan)
    share = 0.0
    attribution = report.slo_worst_attribution
    if attribution.get("total_ms"):
        share = sum(
            ms for name, ms in attribution["contributions"]
            if name.startswith(f"shard:{HOT_SHARD}")
        ) / attribution["total_ms"]
    recorder = report.slo_recorder
    return {
        "chaos_ok": report.ok,
        "violations": list(report.violations),
        "burn_alerts": report.slo_burn_alerts,
        "detection_ms": report.slo_detection_ms,
        "fast_window_ms": SLO_PLAN["fast_window_ms"],
        "dominant": report.slo_dominant,
        "faulted_shard_share": round(share, 4),
        "breaching_seen": recorder.get("anomalous", 0),
        "breaching_retained": report.slo_breaching_retained,
        "clean_seen": recorder.get("clean_seen", 0),
        "clean_retained": recorder.get("clean_retained", 0),
    }


def _time_queries(symphony, app_id, queries, out: list) -> None:
    """Append per-cold-query wall times (ms) to ``out``."""
    for query in queries:
        symphony.runtime.cache.clear()
        start = time.perf_counter()
        symphony.query(app_id, query, session_id="x13")
        out.append((time.perf_counter() - start) * 1000.0)


def measure_overhead(web, rounds: int = 8, n_queries: int = 4) -> dict:
    """Clean-path leg: telemetry-only vs telemetry + SLO judging.

    The SLO thresholds are set far above any real latency so nothing
    breaches — this isolates the per-query cost of *judging* (budget
    windows, burn checks, tail-sampling bookkeeping) from the cost of
    retaining evidence.
    """
    from benchmarks.conftest import build_gamerqueen
    from repro.core.platform import Symphony
    from repro.slo import SLOConfig

    clean_config = SLOConfig(
        latency_threshold_ms=1e9,
        completeness_floor=0.0,
        clean_sample_every=25,
    )
    platforms = {}
    for label, slo in (("telemetry", None), ("slo", clean_config)):
        symphony = Symphony(web=web, use_authority=False,
                            telemetry=True, slo=slo)
        app_id, games = build_gamerqueen(
            symphony, designer_name=f"X13-{label}",
            table_name=f"x13_{label}", n_supplemental=1,
        )
        platforms[label] = (symphony, app_id, games[:n_queries])

    # Warm BOTH platforms before timing either, then interleave the
    # measured rounds, so neither one-time costs nor slow clock drift
    # (GC pressure, thermal state) land on only one platform.
    timings: dict[str, list] = {label: [] for label in platforms}
    for label, (symphony, app_id, queries) in platforms.items():
        _time_queries(symphony, app_id, queries, out=[])
    for __ in range(rounds):
        for label, (symphony, app_id, queries) in platforms.items():
            _time_queries(symphony, app_id, queries, timings[label])
    results = {f"{label}_ms": statistics.median(values)
               for label, values in timings.items()}
    # Judge the overhead claim on the *minimum* wall time per platform:
    # the SLO judging cost is deterministic per query so it shows up in
    # the minimum too, while scheduler/GC noise only ever inflates a
    # sample — min is the low-variance estimator of the true cost.
    floor = {label: min(values) for label, values in timings.items()}
    results["overhead"] = (
        floor["slo"] / floor["telemetry"] - 1.0
        if floor["telemetry"] > 0 else 0.0
    )
    slo_engine = platforms["slo"][0].slo
    results["clean_alerts"] = len(slo_engine.alerts())
    stats = slo_engine.recorder.stats.as_dict()
    results["clean_path_retention"] = stats["clean_retention"]
    return results


def measure(web, rounds: int = 8) -> dict:
    result = {"detection": measure_detection(),
              "overhead": measure_overhead(web, rounds=rounds)}
    result["verdicts"] = verdicts(result)
    return result


def verdicts(result: dict, threshold: float = 0.05) -> dict:
    detection = result["detection"]
    overhead = result["overhead"]
    return {
        "chaos_invariants": detection["chaos_ok"],
        "alert_fired": detection["burn_alerts"] >= 1,
        "detected_within_fast_window": (
            0 < detection["detection_ms"]
            <= detection["fast_window_ms"]
        ),
        "faulted_shard_dominates": (
            detection["faulted_shard_share"] >= 0.5),
        "breaching_traces_retained": (
            detection["breaching_retained"]
            == detection["breaching_seen"] > 0),
        "clean_retention_bounded": (
            detection["clean_retained"]
            <= 0.05 * max(1, detection["clean_seen"])),
        "no_clean_path_alerts": overhead["clean_alerts"] == 0,
        "overhead_within_budget": overhead["overhead"] <= threshold,
    }


def format_artifact(result: dict, threshold: float) -> str:
    detection = result["detection"]
    overhead = result["overhead"]
    checks = verdicts(result, threshold)
    ok = all(checks.values())
    lines = [
        "X13 — SLO layer: burn-rate detection, attribution, overhead",
        "",
        "  detection (chaos: every replica of shard "
        f"{HOT_SHARD} +500ms)",
        f"    burn alerts fired    : {detection['burn_alerts']}",
        f"    detection latency    : {detection['detection_ms']} sim ms"
        f"  (fast window {detection['fast_window_ms']} ms)",
        f"    dominant cause       : {detection['dominant']}",
        f"    faulted-shard share  : "
        f"{detection['faulted_shard_share'] * 100:.1f} %"
        "  (>= 50 % required)",
        f"    breaching retained   : {detection['breaching_retained']}"
        f" of {detection['breaching_seen']}",
        f"    clean retained       : {detection['clean_retained']}"
        f" of {detection['clean_seen']}",
        "",
        "  clean-path overhead (telemetry-only vs telemetry + SLO)",
        f"    telemetry median     : {overhead['telemetry_ms']:8.3f}"
        " ms/query",
        f"    telemetry+slo median : {overhead['slo_ms']:8.3f}"
        " ms/query",
        f"    overhead             : {overhead['overhead'] * 100:+8.1f}"
        f" %   (threshold {threshold * 100:.0f} %)",
        f"    clean-path alerts    : {overhead['clean_alerts']}",
        "",
    ]
    for name, passed in checks.items():
        lines.append(f"  [{'x' if passed else ' '}] {name}")
    lines += [
        "",
        f"  {'PASS' if ok else 'FAIL'}: the judgment layer "
        f"{'detects, attributes, and stays within budget' if ok else 'FAILED a claim above'}",
    ]
    return "\n".join(lines)


def test_slo_bench(bench_web):
    """Pytest entry point: record the artifact, enforce every claim."""
    from benchmarks.conftest import record_artifact

    threshold = 0.05
    result = measure(bench_web, rounds=8)
    record_artifact("x13_slo", format_artifact(result, threshold),
                    data=result, json_name="BENCH_slo.json")
    checks = verdicts(result, threshold)
    assert all(checks.values()), checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SLO layer smoke check (X13)"
    )
    parser.add_argument("--check", type=float, default=0.05,
                        help="max allowed clean-path overhead fraction "
                             "(default 0.05)")
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing benchmarks/artifacts/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root))
    from repro.simweb.generator import WebGenerator, WebSpec

    # A moderate web keeps the smoke check fast while still exercising
    # the full pipeline under the SLO layer.
    spec = WebSpec(seed=args.seed,
                   topics=("video_games", "wine", "news"),
                   extra_sites_per_topic=1, pages_per_site=8,
                   images_per_site=3, videos_per_site=2,
                   news_per_site=4)
    web = WebGenerator(spec).build()
    result = measure(web, rounds=args.rounds)
    result["verdicts"] = verdicts(result, args.check)
    text = format_artifact(result, args.check)
    print(text)
    if not args.no_artifact:
        artifact_dir = repo_root / "benchmarks" / "artifacts"
        artifact_dir.mkdir(exist_ok=True)
        (artifact_dir / "x13_slo.txt").write_text(
            text + "\n", encoding="utf-8")
        (artifact_dir / "BENCH_slo.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    return 0 if all(result["verdicts"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
