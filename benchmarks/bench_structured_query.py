"""Experiment X7 — richer structured querying (§IV future work item 2).

Quantifies the structured-query surface over proprietary data: latency
vs table size for predicate scans, the cost of combining text relevance
with predicates, and the query-language range filter vs the equivalent
predicate — both must return identical row sets.
"""

import pytest

from repro.core.datasources import ProprietaryTableSource, SourceQuery
from repro.core.structured import StructuredQuery
from repro.simweb.vocab import topic_vocabulary
from repro.storage.records import FieldSpec, FieldType, RecordTable, \
    Schema
from repro.util import deterministic_rng

from benchmarks.conftest import record_artifact

TABLE_SIZES = (200, 800, 3200)


def make_source(size):
    vocab = topic_vocabulary("video_games")
    rng = deterministic_rng(("structured", size))
    schema = Schema((
        FieldSpec("title", FieldType.STRING),
        FieldSpec("genre", FieldType.STRING),
        FieldSpec("price", FieldType.FLOAT),
        FieldSpec("stock", FieldType.INTEGER),
    ))
    table = RecordTable("catalog", schema)
    genres = ("shooter", "adventure", "puzzle", "strategy")
    for i in range(size):
        table.insert({
            "title": f"{vocab.sample_entity(rng)} {i}",
            "genre": genres[i % 4],
            "price": round(rng.uniform(5, 80), 2),
            "stock": rng.randint(0, 9),
        })
    return ProprietaryTableSource("catalog", "Catalog", table,
                                  ("title", "genre"))


@pytest.fixture(scope="module")
def sources():
    return {size: make_source(size) for size in TABLE_SIZES}


@pytest.mark.parametrize("size", TABLE_SIZES)
def test_predicate_scan_latency(benchmark, sources, size):
    source = sources[size]
    query = (StructuredQuery(limit=10, order_by="price")
             .where("price", "le", 30)
             .where("stock", "ge", 1))

    result = benchmark(lambda: source.structured_search(query))
    assert result.items
    prices = [item.fields["price"] for item in result.items]
    assert prices == sorted(prices)
    assert all(p <= 30 for p in prices)
    benchmark.extra_info["rows"] = size


@pytest.mark.parametrize("size", TABLE_SIZES)
def test_text_plus_predicates_latency(benchmark, sources, size):
    source = sources[size]
    source.search(SourceQuery("warmup"))  # build the index up front
    query = StructuredQuery(text="adventure", limit=10).where(
        "stock", "gt", 0)

    result = benchmark(lambda: source.structured_search(query))
    assert all(item.fields["genre"] == "adventure"
               for item in result.items)
    benchmark.extra_info["rows"] = size


def test_range_filter_equals_predicate(benchmark, sources):
    """price:[20 TO 40] and (ge 20, le 40) must select the same rows."""
    source = sources[800]

    ranged = benchmark.pedantic(
        lambda: source.search(SourceQuery("price:[20 TO 40]",
                                          count=10_000)),
        rounds=3, iterations=1,
    )
    predicated = source.structured_search(
        StructuredQuery(limit=10_000)
        .where("price", "ge", 20).where("price", "le", 40)
    )
    range_ids = {item.item_id for item in ranged.items}
    predicate_ids = {item.item_id for item in predicated.items}
    assert range_ids == predicate_ids
    assert ranged.total_matches == predicated.total_matches

    record_artifact(
        "x7_structured_query",
        "Structured querying over proprietary data\n"
        f"rows in catalog           : 800\n"
        f"price in [20, 40] matches : {ranged.total_matches}\n"
        "query-language range filter and predicate API agree exactly\n"
        "(latency series in the pytest-benchmark table: "
        "predicate scans scale linearly with table size; text+predicate "
        "pays one relevance search plus the filter)",
    )
