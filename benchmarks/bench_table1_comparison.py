"""Experiment T1 — regenerate Table I (capability comparison).

The paper's Table I compares Symphony with Yahoo! BOSS, Rollyo,
Eurekster, Google Custom Search, and Google Base along six capability
rows. Here the matrix is rebuilt by *probing live implementations* of
all six platforms; the benchmark times a full probe sweep, and the
assertions check the regenerated matrix cell-for-cell against the
printed table.
"""

import pytest

from repro.baselines import (
    EureksterPlatform,
    GoogleBasePlatform,
    GoogleCustomSearchPlatform,
    RollyoPlatform,
    YahooBossPlatform,
    build_table_one,
)
from repro.baselines.probe import SymphonyProbeAdapter, format_table
from repro.core.capability import TABLE_I_ROWS

from benchmarks.conftest import record_artifact

# The matrix exactly as printed in the paper (our Symphony search-API
# cell names the local substrate, per the DESIGN.md substitution table).
PAPER_TABLE = {
    "Search API": [
        "Bing (local substrate)", "Yahoo", "Yahoo", "Yahoo",
        "Google", "Google",
    ],
    "Custom Sites": [
        "Supported", "Supported", "Supported", "Supported",
        "Supported", "No",
    ],
    "Proprietary, Structured Data": [
        "Supports various uploads (HTTP or FTP, RSS, workbook, txt, "
        "xml)",
        "Limited to partners", "No", "No", "No",
        "Supports various uploads (RSS, txt, xml)",
    ],
    "Monetization": [
        "Ads voluntary (revenue-sharing)", "Ads mandatory",
        "Show your own ads",
        "Ads mandatory for for-profit entities.",
        "Ads mandatory for for-profit entities.", "No",
    ],
    "Custom UI": [
        "Drag'n'drop", "Mashup Python library, HTML/CSS",
        "Basic styling (e.g., colors, fonts)",
        "Basic styling (e.g., colors, fonts)",
        "Basic styling (e.g., colors, fonts)", "No",
    ],
    "Deployment of Search Applications": [
        "Hosted at server, published to 3rd-party sites, or Facebook",
        "No assistance.",
        "Only allows search box on 3rd-party sites",
        "Only allows search box on 3rd-party sites",
        "3rd-party sites",
        "Data to surface on Google's search products",
    ],
}


@pytest.fixture(scope="module")
def platforms(bench_symphony):
    return [
        SymphonyProbeAdapter(bench_symphony),
        YahooBossPlatform(bench_symphony.engine,
                          ad_service=bench_symphony.ads),
        RollyoPlatform(bench_symphony.engine),
        EureksterPlatform(bench_symphony.engine),
        GoogleCustomSearchPlatform(bench_symphony.engine),
        GoogleBasePlatform(bench_symphony.engine),
    ]


def test_table1_regenerated_from_live_probes(benchmark, platforms):
    table = benchmark.pedantic(
        build_table_one, args=(platforms,), rounds=3, iterations=1
    )

    record_artifact(
        "table1_comparison",
        format_table(table, cell_width=24)
        + "\n\nconsistency problems: "
        + (", ".join(table["problems"]) or "none"),
    )

    assert table["columns"] == [
        "Symphony", "Y! BOSS", "Rollyo", "Eurekster", "Google Custom",
        "Google Base",
    ]
    assert tuple(table["rows"]) == TABLE_I_ROWS
    for row_name, expected in PAPER_TABLE.items():
        assert table["rows"][row_name] == expected, row_name
    # Every printed claim was verified against observed behaviour.
    assert table["problems"] == []


def test_table1_probe_outcomes_match_paper_story(benchmark, platforms):
    from repro.baselines.probe import probe_platform

    outcomes = benchmark.pedantic(
        lambda: [probe_platform(p) for p in platforms],
        rounds=3, iterations=1,
    )
    by_system = {o.system: o for o in outcomes}

    # Only Symphony and Google Base actually accept structured uploads,
    # and only Symphony both accepts uploads AND builds custom search.
    uploaders = {name for name, o in by_system.items()
                 if o.upload_worked}
    assert uploaders == {"Symphony", "Google Base"}
    full_platforms = {name for name, o in by_system.items()
                      if o.upload_worked and o.custom_sites_worked}
    assert full_platforms == {"Symphony"}
    # Symphony is the only system with voluntary ads + revenue share.
    symphony_policy = by_system["Symphony"].monetization
    assert symphony_policy["ads_mandatory"] is False
    assert symphony_policy["revenue_share"] > 0
    # And the only one whose UI requires no code while going beyond
    # basic styling.
    assert by_system["Symphony"].ui["mode"] == "drag-n-drop"
    assert by_system["Symphony"].ui["coding_required"] is False
