"""Shared fixtures and artifact reporting for the benchmark harness.

Each experiment regenerates a paper artifact (Table I, Fig. 1's canvas,
Fig. 2's pipeline trace, plus the ablations in DESIGN.md §6). Artifacts
are written to ``benchmarks/artifacts/`` and echoed into the terminal
summary so ``pytest benchmarks/ --benchmark-only`` shows the regenerated
tables alongside pytest-benchmark's timing tables.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.platform import Symphony
from repro.simweb.generator import WebGenerator, WebSpec

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"

_ARTIFACTS: dict[str, str] = {}


def record_artifact(name: str, text: str, data=None,
                    json_name: str = "") -> None:
    """Persist a regenerated paper artifact and queue it for the summary.

    When ``data`` is given, a machine-readable JSON twin is written next
    to the text artifact (as ``json_name`` or ``<name>.json``) so CI and
    downstream tooling can consume the numbers without parsing prose.
    """
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / f"{name}.txt").write_text(text + "\n",
                                              encoding="utf-8")
    if data is not None:
        json_path = ARTIFACT_DIR / (json_name or f"{name}.json")
        json_path.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    _ARTIFACTS[name] = text


def pytest_terminal_summary(terminalreporter):
    if not _ARTIFACTS:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("regenerated paper artifacts")
    for name in sorted(_ARTIFACTS):
        terminalreporter.write_line(f"--- {name} " + "-" * 40)
        for line in _ARTIFACTS[name].splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")


BENCH_SPEC = WebSpec(seed=2010)


@pytest.fixture(scope="session")
def bench_web():
    """The full-size synthetic web used across all benchmarks."""
    return WebGenerator(BENCH_SPEC).build()


@pytest.fixture(scope="session")
def bench_symphony(bench_web):
    """A shared platform for read-mostly benchmarks."""
    return Symphony(web=bench_web)


def make_inventory_rows(entities):
    header = "title,producer,description,image_url,detail_url"
    lines = [header]
    for i, name in enumerate(entities):
        lines.append(
            f'{name},Studio {i},"A classic {name} experience",'
            f"http://img.example/{i}.jpg,"
            f"http://store.example/items/{i}"
        )
    return "\n".join(lines).encode()


def build_gamerqueen(symphony, designer_name="Ann",
                     table_name="inventory", n_games=8,
                     n_supplemental=1):
    """Stand up the §II-B application on ``symphony``; returns
    (app_id, games)."""
    account = symphony.register_designer(designer_name)
    games = symphony.web.entities["video_games"][:n_games]
    symphony.upload_http(
        account, f"{table_name}.csv", make_inventory_rows(games),
        table_name, content_type="text/csv",
    )
    inventory = symphony.add_proprietary_source(
        account, table_name,
        search_fields=("title", "producer", "description"),
    )
    designer = symphony.designer()
    session = designer.new_application(
        f"GamerQueen-{designer_name}", account.tenant.tenant_id
    )
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=4,
        search_fields=("title", "producer", "description"),
    )
    session.add_hyperlink(slot, "title", href_field="detail_url")
    session.add_image(slot, "image_url")
    session.add_text(slot, "description")
    supplemental_configs = [
        ("Reviews", ("gamespot.com", "ign.com", "teamxbox.com"),
         "review"),
        ("Guides", ("gamespot.com", "ign.com"), "guide"),
        ("Coverage", (), ""),
        ("Everything", (), "preview"),
    ]
    for i in range(n_supplemental):
        heading, sites, suffix = supplemental_configs[
            i % len(supplemental_configs)
        ]
        source = symphony.add_web_source(
            f"{heading} ({designer_name}-{i})", "web", sites=sites
        )
        session.drag_source_onto_result_layout(
            slot, source.source_id, drive_fields=("title",),
            heading=heading, max_results=2, query_suffix=suffix,
        )
    app_id = symphony.host(session)
    return app_id, games
