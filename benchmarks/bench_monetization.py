"""Experiment X4 — monetization throughput and ledger integrity (§II-A).

"When a link is clicked in a Symphony-hosted application, it can be
logged by the system... the application designers will automatically be
credited by that service for any ad-click revenue... a summary of an
application's click traffic can be downloaded." This bench measures ad
auction and click-recording throughput and asserts the money adds up:
advertiser spend == designer payout + platform revenue.
"""

import pytest

from repro.core.monetization import ReferralReport
from repro.core.platform import Symphony
from repro.services.ads import AdService
from repro.util import deterministic_rng

from benchmarks.conftest import build_gamerqueen, record_artifact


def make_marketplace(n_advertisers=6, campaigns_each=3):
    ads = AdService()
    rng = deterministic_rng("marketplace")
    keywords_pool = ["game", "halo", "zelda", "console", "review",
                     "wine", "travel", "deal", "classic", "arcade"]
    for i in range(n_advertisers):
        advertiser = ads.create_advertiser(f"Adv{i}", 500.0)
        for j in range(campaigns_each):
            ads.create_campaign(
                advertiser.advertiser_id,
                keywords=rng.sample(keywords_pool, 3),
                bid_per_click=round(rng.uniform(0.05, 0.95), 2),
                headline=f"Adv{i} campaign {j}",
                url=f"http://adv{i}.example/{j}",
                quality=round(rng.uniform(0.6, 1.4), 2),
            )
    return ads


def test_auction_throughput(benchmark):
    ads = make_marketplace()
    queries = ["halo game deal", "zelda review", "classic console",
               "wine travel", "arcade game"]
    counter = {"i": 0}

    def auction():
        counter["i"] += 1
        query = queries[counter["i"] % len(queries)]
        return ads.select_ads(query, "bench-app", count=3)

    selected = benchmark(auction)
    assert selected
    # GSP invariant: prices never exceed the winning bid, never below
    # the reserve.
    for ad in selected:
        campaign = ads.campaign(ad.campaign_id)
        assert 0.01 <= ad.price_per_click <= campaign.bid_per_click


def test_click_ledger_integrity(benchmark):
    ads = make_marketplace()
    rng = deterministic_rng("clicks")
    queries = ["halo game", "zelda console", "wine deal",
               "classic arcade game", "travel review"]

    def simulate_traffic(n_queries=60):
        for i in range(n_queries):
            query = queries[i % len(queries)]
            app_id = f"app-{i % 3}"
            for ad in ads.select_ads(query, app_id, count=2,
                                     now_ms=i):
                if rng.random() < 0.4:
                    ads.record_click(ad.ad_id, now_ms=i)
        return ads

    benchmark.pedantic(simulate_traffic, rounds=1, iterations=1)

    total_spend = sum(
        ads.advertiser_spend(a) for a in
        {c.advertiser_id for c in ads._campaigns.values()}
    )
    total_payout = sum(ads.designer_earnings(f"app-{i}")
                       for i in range(3))
    platform = ads.platform_revenue()

    lines = [
        "Monetization ledger integrity",
        f"advertiser spend : ${total_spend:10.4f}",
        f"designer payout  : ${total_payout:10.4f}",
        f"platform revenue : ${platform:10.4f}",
        f"share check      : payout / spend = "
        f"{total_payout / total_spend:.3f} "
        f"(configured {ads.designer_share})",
        f"ledger entries   : {len(ads.ledger)}",
    ]
    record_artifact("x4_ledger_integrity", "\n".join(lines))

    assert total_spend > 0
    assert total_spend == pytest.approx(total_payout + platform,
                                        abs=1e-6)
    assert total_payout / total_spend == pytest.approx(
        ads.designer_share, abs=0.01
    )


def test_end_to_end_monetized_application(benchmark, bench_web):
    """Full platform loop: queries, clicks, ad credits, referral CSV."""
    symphony = Symphony(web=bench_web)
    app_id, games = build_gamerqueen(symphony, designer_name="Money",
                                     table_name="money_inventory",
                                     n_supplemental=1)
    ads_source = symphony.add_ad_source()
    advertiser = symphony.ads.create_advertiser("BigCo", 200.0)
    symphony.ads.create_campaign(
        advertiser.advertiser_id, [games[0], games[1], "game"],
        0.35, "BigCo", "http://bigco.example",
    )
    app = symphony.apps.get(app_id)
    from repro.core.application import (SourceBinding, SourceRole,
                                        SourceSlot)
    monetized = type(app)(
        app_id="money-app", name=app.name,
        owner_tenant=app.owner_tenant,
        bindings=app.bindings + (
            SourceBinding("ads-b", ads_source.source_id,
                          SourceRole.ADS),
        ),
        slots=app.slots + (SourceSlot(binding_id="ads-b",
                                      heading="Sponsored"),),
        theme=app.theme,
    )
    symphony.apps.register(monetized)

    def customer_session(i=[0]):
        i[0] += 1
        query = games[i[0] % 4]
        response = symphony.query("money-app", query,
                                  session_id=f"s{i[0]}")
        view = response.views[0]
        symphony.record_click("money-app", query,
                              view.item.get("detail_url"),
                              session_id=f"s{i[0]}")
        for result in view.supplemental.values():
            if result.items:
                symphony.record_click("money-app", query,
                                      result.items[0].url)
        for ad in response.ads:
            symphony.record_click("money-app", query, ad.url,
                                  ad_id=ad.get("ad_id"))
        return response

    benchmark.pedantic(customer_session, rounds=10, iterations=1)

    summary = symphony.traffic_summary("money-app")
    earnings = symphony.designer_ad_earnings("money-app")
    report = ReferralReport(summary, rate_per_click=0.05)

    lines = [
        "Monetized application summary (10 customer sessions)",
        f"queries: {summary.query_count}   "
        f"clicks: {summary.click_count} "
        f"(ads: {summary.ad_click_count})",
        f"designer ad earnings: ${earnings:.4f}",
        "referral report:",
        report.to_csv().rstrip(),
    ]
    record_artifact("x4_monetized_app", "\n".join(lines))

    assert summary.click_count >= 20
    assert summary.ad_click_count > 0
    assert earnings > 0
    assert report.total_owed() > 0
    # Designer earnings must equal the ledger's view of this app.
    assert earnings == pytest.approx(
        symphony.ads.designer_earnings("money-app")
    )
