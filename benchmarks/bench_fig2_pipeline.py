"""Experiment F2 — regenerate Fig. 2 (query execution in Symphony).

Fig. 2 traces a customer query through the platform: the auto-generated
JavaScript forwards it to Symphony, the primary (proprietary) content is
searched, supplemental sources are queried using fields of each primary
result, everything is merged and formatted into HTML, and the fragment
returns to the embedded JavaScript for injection. The benchmark times
the end-to-end pipeline; assertions pin the stage order and data flow.
"""

import pytest

from repro.core.platform import Symphony
from benchmarks.conftest import build_gamerqueen, record_artifact


@pytest.fixture(scope="module")
def pipeline(bench_web):
    # A private platform: the cache ablation needs cold/warm control.
    symphony = Symphony(web=bench_web, cache_enabled=True)
    app_id, games = build_gamerqueen(symphony, designer_name="Fig2-Ann",
                                     table_name="fig2_inventory",
                                     n_supplemental=1)
    return symphony, app_id, games


def test_fig2_end_to_end_query(benchmark, pipeline):
    symphony, app_id, games = pipeline

    query = games[0]

    def run_cold():
        symphony.runtime.cache.clear()
        return symphony.query(app_id, query, session_id="fig2")

    response = benchmark.pedantic(run_cold, rounds=5, iterations=1)
    trace = response.trace

    flow_lines = [
        "Fig. 2 — Query execution in Symphony",
        f"customer query: {query!r} on GamerQueen "
        f"(app {response.app_id})",
        "",
        "  [browser] auto-generated JS forwards the query",
        "     |",
        "     v",
    ]
    for stage in trace.stages:
        flow_lines.append(
            f"  [{stage.name:<16}] {stage.elapsed_ms:>8.3f} ms   "
            f"{stage.detail}"
        )
    flow_lines += [
        "     |",
        "     v",
        "  [browser] JS injects the HTML into the GamerQueen page",
        "",
        f"simulated total: {trace.total_ms():.3f} ms "
        f"(cache hits {trace.cache_hits}, misses {trace.cache_misses})",
    ]
    record_artifact("fig2_query_execution", "\n".join(flow_lines))

    # Stage order is exactly the paper's flow.
    assert [s.name for s in trace.stages] == [
        "receive", "primary", "supplemental", "merge+render", "respond",
    ]
    # Primary content answered from the proprietary index.
    assert response.views
    assert response.views[0].item.get("producer", "").startswith(
        "Studio"
    )
    # Supplemental content driven by the primary result's title field.
    supplemental = list(response.views[0].supplemental.values())[0]
    assert supplemental.items
    # The supplemental fan-out dominates end-to-end latency, which is
    # the platform's hosted-execution argument: Symphony shoulders it.
    assert trace.stage("supplemental").elapsed_ms > \
        trace.stage("primary").elapsed_ms
    assert trace.stage("supplemental").elapsed_ms > \
        trace.stage("merge+render").elapsed_ms
    # The response is the injectable HTML fragment.
    assert response.html.startswith('<div class="symphony-app"')


def test_fig2_repeat_query_served_from_cache(benchmark, pipeline):
    symphony, app_id, games = pipeline
    query = games[1]
    symphony.runtime.cache.clear()
    symphony.query(app_id, query)  # warm the cache

    warm = benchmark.pedantic(
        lambda: symphony.query(app_id, query), rounds=5, iterations=1
    )
    assert warm.trace.cache_hits > 0
    assert warm.trace.cache_misses == 0

    symphony.runtime.cache.clear()
    cold = symphony.query(app_id, query)
    assert warm.trace.total_ms() < cold.trace.total_ms()


def test_fig2_error_isolation_keeps_app_up(benchmark, pipeline,
                                           bench_web):
    """A failing supplemental service must not take the page down."""
    from repro.services.bus import ServiceBus

    symphony = Symphony(web=bench_web)
    # A service that always fails (100% outage probability).
    symphony.bus = ServiceBus(clock=symphony.clock,
                              failure_probability=1.0, seed=9)
    from repro.services.samples import PricingService
    symphony.bus.register(PricingService())

    app_id, games = build_gamerqueen(symphony, designer_name="Iso-Ann",
                                     table_name="iso_inventory",
                                     n_supplemental=0)
    app = symphony.apps.get(app_id)
    pricing = symphony.add_service_source(
        "Flaky pricing", "pricing", "GET /prices/{sku}", "sku",
    )
    # Attach the flaky service as supplemental via a rebuilt app.
    from repro.core.application import (SourceBinding, SourceRole,
                                        SourceSlot)
    binding = SourceBinding("flaky-b", pricing.source_id,
                            SourceRole.SUPPLEMENTAL,
                            drive_fields=("title",), max_results=1)
    slot = app.slots[0]
    new_slot = SourceSlot(
        binding_id=slot.binding_id, heading=slot.heading,
        result_layout=slot.result_layout,
        children=slot.children + (SourceSlot(binding_id="flaky-b"),),
    )
    patched = type(app)(
        app_id="iso-app", name=app.name, owner_tenant=app.owner_tenant,
        bindings=app.bindings + (binding,), slots=(new_slot,),
        theme=app.theme,
    )
    symphony.apps.register(patched)

    response = benchmark.pedantic(
        lambda: symphony.query("iso-app", games[0]),
        rounds=3, iterations=1,
    )
    assert response.views  # primary content still rendered
    assert any("failed" in w for w in response.trace.warnings)
    assert "No supplemental results" in response.html
