"""Experiment X5 — ranking ablation: BM25-only vs BM25 + link authority.

DESIGN.md §6: the web vertical blends BM25 text relevance with a
PageRank prior. The quality proxy: when searching for an entity with
review intent, the well-known high-authority sites (gamespot/ign/...)
should fill more of the top-3 with the prior enabled, without changing
the candidate set. Also times the blended vs plain ranking path.
"""

import pytest

from repro.searchengine.engine import SearchOptions, build_engine
from repro.simweb.vocab import topic_vocabulary

from benchmarks.conftest import record_artifact


@pytest.fixture(scope="module")
def engines(bench_web):
    return (build_engine(bench_web, use_authority=True),
            build_engine(bench_web, use_authority=False))


GENERIC_QUERIES = ("game review", "console game", "wine tasting notes",
                   "travel guide", "breaking report")


def mean_top10_site_authority(engine, web):
    """Average authority hint of the sites serving top-10 results.

    Generic queries leave many near-ties in text relevance, so the
    ordering choice among them is exactly what the prior decides.
    """
    values = []
    for query in GENERIC_QUERIES:
        response = engine.search("web", query, SearchOptions(count=10))
        for result in response.results:
            values.append(web.sites[result.site].authority_hint)
    return sum(values) / len(values)


def test_authority_prior_promotes_known_sites(benchmark, engines,
                                              bench_web):
    with_prior, without_prior = engines

    mean_with = benchmark.pedantic(
        mean_top10_site_authority, args=(with_prior, bench_web),
        rounds=3, iterations=1,
    )
    mean_without = mean_top10_site_authority(without_prior, bench_web)

    record_artifact(
        "x5_ranking_ablation",
        "Mean site authority of top-10 results on generic queries\n"
        f"BM25 + authority : {mean_with:.3f}\n"
        f"BM25 only        : {mean_without:.3f}\n"
        "(same candidate sets; only the ordering changes)",
    )
    # The prior pulls higher-authority sites upward...
    assert mean_with > mean_without

    # ...without changing the candidate set.
    entity = bench_web.entities["video_games"][0]
    a = with_prior.search("web", f'"{entity}"',
                          SearchOptions(count=100))
    b = without_prior.search("web", f'"{entity}"',
                             SearchOptions(count=100))
    assert set(a.urls()) == set(b.urls())

    # Well-known (high-authority) review sites still dominate focused
    # review queries under both configurations.
    well_known = set(topic_vocabulary("video_games").sites)
    for engine in engines:
        response = engine.search(
            "web", f'"{entity}" review', SearchOptions(count=3)
        )
        assert {r.site for r in response.results} <= well_known


def test_ranking_cost_of_blending(benchmark, engines):
    """Blending adds a dict lookup per candidate — cost must be small."""
    with_prior, without_prior = engines

    def query_with():
        return with_prior.search("web", "game review",
                                 SearchOptions(count=10))

    response = benchmark(query_with)
    assert response.results

    import time
    start = time.perf_counter()
    for __ in range(20):
        without_prior.search("web", "game review",
                             SearchOptions(count=10))
    plain_s = (time.perf_counter() - start) / 20
    start = time.perf_counter()
    for __ in range(20):
        query_with()
    blended_s = (time.perf_counter() - start) / 20
    # Allow generous headroom; blending must not blow up ranking cost.
    assert blended_s < plain_s * 3
